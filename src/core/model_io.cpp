#include "src/core/model_io.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cmarkov::core {

namespace {

constexpr const char* kMagic = "cmarkov-detector";
constexpr int kVersion = 1;

void write_matrix(std::ostream& out, const char* tag, const Matrix& m) {
  out << tag << " " << m.rows() << " " << m.cols() << "\n";
  out << std::setprecision(17);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out << " ";
      out << m(r, c);
    }
    out << "\n";
  }
}

Matrix read_matrix(std::istream& in, const std::string& expected_tag) {
  std::string tag;
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(in >> tag >> rows >> cols) || tag != expected_tag) {
    throw std::runtime_error("model_io: expected matrix tag '" +
                             expected_tag + "'");
  }
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (!(in >> m(r, c))) {
        throw std::runtime_error(
            "model_io: truncated or malformed '" + expected_tag +
            "' matrix at row " + std::to_string(r) + ", column " +
            std::to_string(c));
      }
    }
  }
  return m;
}

/// Reads one numeric value, failing loudly with the owning key's name.
template <typename T>
T read_value(std::istream& in, const char* key) {
  T value{};
  if (!(in >> value)) {
    throw std::runtime_error(
        std::string("model_io: malformed value for key '") + key + "'");
  }
  return value;
}

/// Reads a double that must be finite (rejects "nan"/"inf" spellings too,
/// which operator>> would not even parse).
double read_finite_double(std::istream& in, const char* key) {
  std::string token;
  if (!(in >> token)) {
    throw std::runtime_error(std::string("model_io: missing value for key '") +
                             key + "'");
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || !std::isfinite(value)) {
    throw std::runtime_error(std::string("model_io: key '") + key +
                             "' has non-finite or malformed value '" + token +
                             "'");
  }
  return value;
}

}  // namespace

void save_detector(std::ostream& out, const Detector& detector) {
  const DetectorConfig& config = detector.config();
  out << kMagic << " " << kVersion << "\n";
  out << "filter " << analysis::call_filter_name(config.pipeline.filter)
      << "\n";
  out << "context " << (config.pipeline.context_sensitive ? 1 : 0) << "\n";
  out << "segment_length " << config.segments.length << "\n";
  out << "trained " << (detector.trained() ? 1 : 0) << "\n";
  out << std::setprecision(17);
  out << "threshold " << detector.threshold() << "\n";

  const hmm::Alphabet& alphabet = detector.alphabet();
  out << "alphabet " << alphabet.size() << "\n";
  for (const auto& symbol : alphabet.symbols()) {
    out << symbol << "\n";  // observation strings never contain newlines
  }

  const hmm::Hmm& model = detector.model();
  write_matrix(out, "transition", model.transition);
  write_matrix(out, "emission", model.emission);
  out << "initial " << model.initial.size() << "\n";
  for (std::size_t i = 0; i < model.initial.size(); ++i) {
    if (i > 0) out << " ";
    out << model.initial[i];
  }
  out << "\n";
}

void save_detector_file(const std::string& path, const Detector& detector) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("model_io: cannot open '" + path +
                             "' for writing");
  }
  save_detector(out, detector);
}

Detector load_detector(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    throw std::runtime_error("model_io: not a cmarkov detector file");
  }
  int version = 0;
  if (!(in >> version)) {
    throw std::runtime_error(
        "model_io: malformed version line (expected '" + std::string(kMagic) +
        " <number>')");
  }
  if (version != kVersion) {
    throw std::runtime_error("model_io: unsupported version " +
                             std::to_string(version));
  }

  auto expect_key = [&](const char* key) {
    std::string seen;
    if (!(in >> seen) || seen != key) {
      throw std::runtime_error(std::string("model_io: expected key '") +
                               key + "'");
    }
  };

  DetectorConfig config;
  expect_key("filter");
  std::string filter_name;
  in >> filter_name;
  if (filter_name == "syscall") {
    config.pipeline.filter = analysis::CallFilter::kSyscalls;
  } else if (filter_name == "libcall") {
    config.pipeline.filter = analysis::CallFilter::kLibcalls;
  } else if (filter_name == "all") {
    config.pipeline.filter = analysis::CallFilter::kAll;
  } else {
    throw std::runtime_error("model_io: unknown filter '" + filter_name +
                             "'");
  }
  expect_key("context");
  config.pipeline.context_sensitive = read_value<int>(in, "context") != 0;
  expect_key("segment_length");
  config.segments.length = read_value<std::size_t>(in, "segment_length");
  expect_key("trained");
  const int trained = read_value<int>(in, "trained");
  expect_key("threshold");
  const double threshold = read_finite_double(in, "threshold");

  expect_key("alphabet");
  const auto alphabet_size = read_value<std::size_t>(in, "alphabet");
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  hmm::Alphabet alphabet;
  for (std::size_t i = 0; i < alphabet_size; ++i) {
    std::string symbol;
    if (!std::getline(in, symbol)) {
      throw std::runtime_error("model_io: truncated alphabet");
    }
    alphabet.intern(symbol);
  }
  if (alphabet.size() != alphabet_size) {
    throw std::runtime_error("model_io: duplicate alphabet symbols");
  }

  hmm::Hmm model;
  model.transition = read_matrix(in, "transition");
  model.emission = read_matrix(in, "emission");
  expect_key("initial");
  const auto initial_size = read_value<std::size_t>(in, "initial");
  model.initial.resize(initial_size);
  for (std::size_t i = 0; i < initial_size; ++i) {
    if (!(in >> model.initial[i])) {
      throw std::runtime_error(
          "model_io: truncated 'initial' vector at entry " +
          std::to_string(i));
    }
  }

  return Detector::from_parts(std::move(config), std::move(model),
                              std::move(alphabet), threshold, trained != 0);
}

Detector load_detector_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("model_io: cannot open '" + path + "'");
  }
  return load_detector(in);
}

}  // namespace cmarkov::core
