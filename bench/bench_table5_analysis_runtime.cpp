// Table V: runtime of CMarkov's static analysis operations per program and
// call stream — CFG construction, probability estimation (per-function
// call-transition matrices), aggregation, clustering and HMM
// initialization. The paper reports most operations finishing in seconds.
// A second section times Baum-Welch training sequential vs parallel per
// program; a third runs an interleaved A/B of full retraining vs
// hmm::Trainer::partial_fit absorbing ~10% new segments (bit-identical by
// the prefix-fold construction in trainer.hpp, so the speedup is free).
// Both write the machine-readable BENCH_train.json trail.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/pipeline.hpp"
#include "src/eval/comparison.hpp"
#include "src/eval/model_zoo.hpp"
#include "src/hmm/random_init.hpp"
#include "src/hmm/trainer.hpp"
#include "src/trace/segmenter.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/program_suite.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

namespace {

struct TrainTiming {
  std::string program;
  std::size_t states = 0;
  std::size_t segments = 0;
  std::size_t iterations = 0;
  double sequential_ms = 0.0;
  double parallel_ms = 0.0;
  bool identical = false;
};

/// Trains `model` on `segments` once per thread setting and checks that the
/// parallel result is bit-identical to the sequential one.
TrainTiming time_training(const std::string& name, const hmm::Hmm& model,
                          const std::vector<hmm::ObservationSeq>& segments,
                          std::size_t max_iterations) {
  TrainTiming timing;
  timing.program = name;
  timing.states = model.num_states();
  timing.segments = segments.size();

  hmm::TrainingOptions options;
  options.max_iterations = max_iterations;
  options.min_improvement = -1.0;  // run all iterations for a stable timing

  options.exec.threads = 1;
  Stopwatch seq_watch;
  hmm::Trainer seq_trainer(model, options);
  const auto seq_report = seq_trainer.fit(segments);
  timing.sequential_ms = seq_watch.seconds() * 1e3;
  timing.iterations = seq_report.iterations;
  const hmm::Hmm sequential = seq_trainer.model();

  options.exec.threads = 0;  // one worker per hardware core
  Stopwatch par_watch;
  hmm::Trainer par_trainer(model, options);
  par_trainer.fit(segments);
  timing.parallel_ms = par_watch.seconds() * 1e3;
  const hmm::Hmm parallel = par_trainer.model();

  timing.identical = sequential.transition == parallel.transition &&
                     sequential.emission == parallel.emission &&
                     sequential.initial == parallel.initial;
  return timing;
}

struct SuiteCorpus {
  hmm::Hmm model;
  std::vector<hmm::ObservationSeq> segments;
};

/// Builds the per-program training corpus the same way the comparison
/// harness does: collected traces, CMarkov model, dedup'd 15-call segments.
SuiteCorpus build_suite_corpus(const std::string& name, bool full) {
  const workload::ProgramSuite suite = workload::make_suite(name);
  const auto collection =
      workload::collect_traces(suite, full ? 60 : 20, /*seed=*/1);

  eval::ModelBuildOptions build;
  build.exec.threads = 0;
  Rng rng(7);
  const eval::BuiltModel model = eval::build_model(
      eval::ModelKind::kCMarkov, suite, collection.traces, build, rng);

  trace::SegmentOptions seg_options;
  seg_options.length = 15;
  seg_options.keep_short_tail = false;
  trace::SegmentSet unique_segments(seg_options);
  for (const auto& trace : collection.traces) {
    unique_segments.add_trace(model.encode(trace));
  }
  std::vector<hmm::ObservationSeq> segments = unique_segments.to_vector();
  const std::size_t cap = full ? 800 : 200;
  if (segments.size() > cap) segments.resize(cap);
  return {model.hmm, std::move(segments)};
}

TrainTiming time_suite_training(const std::string& name, bool full) {
  const SuiteCorpus corpus = build_suite_corpus(name, full);
  return time_training(name, corpus.model, corpus.segments, full ? 5 : 2);
}

struct IncrementalTiming {
  std::string program;
  std::size_t base_segments = 0;
  std::size_t new_segments = 0;
  std::size_t iterations = 0;
  double full_ms = 0.0;         // retrain on base + new from scratch
  double incremental_ms = 0.0;  // partial_fit absorbing only the new 10%
  bool identical = false;       // tentpole contract: must always be true
};

/// Interleaved A/B: per repeat, (A) a full `fit` on the combined corpus,
/// then (B) a copy of a trainer already fitted on the base corpus doing a
/// `partial_fit` of the new ~10%. Interleaving keeps cache/thermal drift
/// from biasing one arm. The two final models must be bit-identical — the
/// prefix-fold replay in Trainer makes the absorb path reuse the cached
/// iteration-0 E-step rather than changing any arithmetic.
IncrementalTiming time_incremental(const std::string& name,
                                   const SuiteCorpus& corpus,
                                   std::size_t max_iterations, int repeats) {
  IncrementalTiming t;
  t.program = name;
  const std::size_t total = corpus.segments.size();
  const std::size_t new_count = std::max<std::size_t>(1, total / 11);
  const std::size_t base_count = total - new_count;
  const std::vector<hmm::ObservationSeq> base(
      corpus.segments.begin(), corpus.segments.begin() + base_count);
  const std::vector<hmm::ObservationSeq> extra(
      corpus.segments.begin() + base_count, corpus.segments.end());
  t.base_segments = base_count;
  t.new_segments = new_count;

  hmm::TrainingOptions options;
  options.max_iterations = max_iterations;
  options.min_improvement = -1.0;
  options.exec.threads = 0;

  // The deployment-time state: a trainer that already absorbed the base
  // corpus (cmarkov train --save-state). Built once, outside the timers.
  hmm::Trainer primed(corpus.model, options);
  primed.fit(base);

  hmm::Hmm full_model;
  hmm::Hmm incremental_model;
  for (int r = 0; r < repeats; ++r) {
    {
      hmm::Trainer full(corpus.model, options);
      Stopwatch watch;
      const auto report = full.fit(corpus.segments);
      t.full_ms += watch.seconds() * 1e3 / repeats;
      t.iterations = report.iterations;
      full_model = full.model();
    }
    {
      hmm::Trainer inc = primed;
      Stopwatch watch;
      inc.partial_fit(extra);
      t.incremental_ms += watch.seconds() * 1e3 / repeats;
      incremental_model = inc.model();
    }
  }
  t.identical = full_model.transition == incremental_model.transition &&
                full_model.emission == incremental_model.emission &&
                full_model.initial == incremental_model.initial;
  return t;
}

/// Synthetic >=128-state entry (the acceptance benchmark for the parallel
/// E-step): a randomly initialized dense model over random 15-call
/// segments.
TrainTiming time_synthetic_training(std::size_t states, bool full) {
  Rng rng(states * 17 + 1);
  const hmm::Hmm model =
      hmm::randomly_initialized_hmm(states, states, rng);
  std::vector<hmm::ObservationSeq> segments;
  const std::size_t count = full ? 400 : 150;
  for (std::size_t i = 0; i < count; ++i) {
    hmm::ObservationSeq seq(15);
    for (auto& s : seq) s = rng.index(model.num_symbols());
    segments.push_back(std::move(seq));
  }
  return time_training("synthetic-" + std::to_string(states), model,
                       segments, full ? 4 : 2);
}

void write_bench_train_json(const std::vector<TrainTiming>& timings,
                            const std::vector<IncrementalTiming>& absorbs,
                            std::size_t threads) {
  std::ofstream out("BENCH_train.json");
  out << "{\n  \"benchmark\": \"baum_welch_training\",\n"
      << "  \"parallel_threads\": " << threads << ",\n"
      << "  \"programs\": [\n";
  for (std::size_t i = 0; i < timings.size(); ++i) {
    const TrainTiming& t = timings[i];
    out << "    {\"program\": \"" << t.program << "\", \"states\": "
        << t.states << ", \"segments\": " << t.segments
        << ", \"iterations\": " << t.iterations
        << ", \"sequential_ms\": " << format_double(t.sequential_ms, 3)
        << ", \"parallel_ms\": " << format_double(t.parallel_ms, 3)
        << ", \"speedup\": "
        << format_double(t.parallel_ms > 0.0
                             ? t.sequential_ms / t.parallel_ms
                             : 0.0,
                         3)
        << ", \"bit_identical\": " << (t.identical ? "true" : "false")
        << "}" << (i + 1 < timings.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"incremental\": [\n";
  for (std::size_t i = 0; i < absorbs.size(); ++i) {
    const IncrementalTiming& t = absorbs[i];
    out << "    {\"program\": \"" << t.program
        << "\", \"base_segments\": " << t.base_segments
        << ", \"new_segments\": " << t.new_segments
        << ", \"iterations\": " << t.iterations
        << ", \"full_retrain_ms\": " << format_double(t.full_ms, 3)
        << ", \"partial_fit_ms\": " << format_double(t.incremental_ms, 3)
        << ", \"speedup\": "
        << format_double(
               t.incremental_ms > 0.0 ? t.full_ms / t.incremental_ms : 0.0,
               3)
        << ", \"bit_identical\": " << (t.identical ? "true" : "false")
        << "}" << (i + 1 < absorbs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = eval::full_mode_enabled(argc, argv);
  const int repeats = full ? 20 : 5;
  std::cout << "=== Table V: static-analysis runtime per program (mean of "
            << repeats << " runs, milliseconds) ===\n\n";

  for (const auto filter :
       {analysis::CallFilter::kLibcalls, analysis::CallFilter::kSyscalls}) {
    std::cout << "--- " << analysis::call_filter_name(filter)
              << " models ---\n";
    TablePrinter table({"Program", "CFG construction", "Probability",
                        "Aggregation", "Clustering", "HMM init", "Total"});
    for (const auto& name : workload::all_suite_names()) {
      const workload::ProgramSuite suite = workload::make_suite(name);
      PhaseTimer accumulated;
      for (int r = 0; r < repeats; ++r) {
        core::PipelineConfig config;
        config.filter = filter;
        config.clustering.min_calls_for_reduction = 0;  // exercise clustering
        Rng rng(static_cast<std::uint64_t>(r));
        const auto result =
            core::run_static_pipeline(suite.module(), config, rng);
        for (const auto& [phase, seconds] : result.timings.totals()) {
          accumulated.add(phase, seconds);
        }
      }
      auto mean_ms = [&](const char* phase) {
        return accumulated.total(phase) / repeats * 1e3;
      };
      const double total = mean_ms("cfg") + mean_ms("probability") +
                           mean_ms("aggregation") + mean_ms("clustering") +
                           mean_ms("initialization");
      table.add_row({name, format_double(mean_ms("cfg"), 3),
                     format_double(mean_ms("probability"), 3),
                     format_double(mean_ms("aggregation"), 3),
                     format_double(mean_ms("clustering"), 3),
                     format_double(mean_ms("initialization"), 3),
                     format_double(total, 3)});
    }
    table.print();
    std::cout << "\n";
  }
  std::cout << "Shape check: every operation completes in milliseconds on\n"
               "the synthetic programs (the paper reports seconds on real\n"
               "binaries); aggregation and probability estimation dominate.\n";

  const std::size_t threads = resolve_num_threads(0);
  std::cout << "\n=== Baum-Welch training runtime: sequential vs parallel ("
            << threads << " hardware threads) ===\n\n";
  std::vector<TrainTiming> timings;
  for (const auto& name : workload::all_suite_names()) {
    timings.push_back(time_suite_training(name, full));
  }
  timings.push_back(time_synthetic_training(128, full));
  if (full) timings.push_back(time_synthetic_training(372, full));

  TablePrinter train_table({"Program", "States", "Segments", "Iters",
                            "Sequential (ms)", "Parallel (ms)", "Speedup",
                            "Bit-identical"});
  for (const auto& t : timings) {
    train_table.add_row(
        {t.program, std::to_string(t.states), std::to_string(t.segments),
         std::to_string(t.iterations), format_double(t.sequential_ms, 2),
         format_double(t.parallel_ms, 2),
         format_double(
             t.parallel_ms > 0.0 ? t.sequential_ms / t.parallel_ms : 0.0, 2),
         t.identical ? "yes" : "NO"});
  }
  train_table.print();

  std::cout << "\n=== Incremental absorb: full retrain vs partial_fit of "
               "~10% new segments (interleaved A/B) ===\n\n";
  const int ab_repeats = full ? 5 : 3;
  std::vector<IncrementalTiming> absorbs;
  for (const auto& name : workload::all_suite_names()) {
    const SuiteCorpus corpus = build_suite_corpus(name, full);
    absorbs.push_back(
        time_incremental(name, corpus, full ? 5 : 2, ab_repeats));
  }
  TablePrinter absorb_table({"Program", "Base", "New", "Iters",
                             "Full retrain (ms)", "partial_fit (ms)",
                             "Speedup", "Bit-identical"});
  for (const auto& t : absorbs) {
    absorb_table.add_row(
        {t.program, std::to_string(t.base_segments),
         std::to_string(t.new_segments), std::to_string(t.iterations),
         format_double(t.full_ms, 2), format_double(t.incremental_ms, 2),
         format_double(
             t.incremental_ms > 0.0 ? t.full_ms / t.incremental_ms : 0.0, 2),
         t.identical ? "yes" : "NO"});
  }
  absorb_table.print();
  write_bench_train_json(timings, absorbs, threads);
  std::cout << "\nWrote BENCH_train.json. Parallel training uses one worker\n"
               "per hardware core and is bit-identical to the sequential\n"
               "path by construction (fixed merge-slot reduction); the\n"
               "partial_fit arm reuses the cached iteration-0 E-step over\n"
               "the base corpus, so absorbing K% new data costs roughly\n"
               "(iters-1+K)/iters of a full retrain, bit-identically.\n";
  return 0;
}
