#include "src/util/crc32.hpp"

#include <array>

namespace cmarkov::util {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace cmarkov::util
