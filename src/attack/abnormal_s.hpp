// Abnormal-S synthesis (Section V-A): synthetic abnormal segments built by
// replacing the last 4 calls of a normal 15-call segment with calls drawn
// randomly from the program's legitimate call set.
//
// Generation happens at the *event* level ((name, caller) pairs), so the
// same abnormal segment can be encoded under every model's observation
// scheme — context-sensitive and context-free models are judged on
// identical abnormal behaviour.
#pragma once

#include <cstddef>
#include <vector>

#include "src/analysis/context.hpp"
#include "src/trace/event.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::attack {

/// One (name, caller) pair of the legitimate call set. `site_address`,
/// `grandparent_address` and `grandcaller` are representative values for
/// the pair (used when synthesizing events so that site-/deep-granular
/// encodings observe legitimate contexts); they do not participate in
/// identity/ordering.
struct LegitimateCall {
  std::string name;
  std::string caller;
  ir::CallKind kind = ir::CallKind::kSyscall;
  std::uint64_t site_address = 0;
  std::uint64_t grandparent_address = 0;
  std::string grandcaller;

  friend bool operator==(const LegitimateCall& a, const LegitimateCall& b) {
    return a.name == b.name && a.caller == b.caller && a.kind == b.kind;
  }
  friend auto operator<=>(const LegitimateCall& a, const LegitimateCall& b) {
    if (auto c = a.name <=> b.name; c != 0) return c;
    if (auto c = a.caller <=> b.caller; c != 0) return c;
    return a.kind <=> b.kind;
  }
};

/// Distinct calls observed in a set of symbolized traces, filtered to one
/// stream. This is the paper's "legitimate call set".
std::vector<LegitimateCall> legitimate_call_set(
    const std::vector<trace::Trace>& traces, analysis::CallFilter filter);

/// An event-level segment (usually 15 events).
using EventSegment = std::vector<trace::CallEvent>;

/// Cuts symbolized traces into event segments of `length` (stride 1),
/// filtered to one stream.
std::vector<EventSegment> event_segments(
    const std::vector<trace::Trace>& traces, analysis::CallFilter filter,
    std::size_t length = 15);

struct AbnormalSOptions {
  std::size_t segment_length = 15;
  /// Number of trailing calls replaced (the paper replaces 4).
  std::size_t tail_length = 4;
};

/// Generates `count` Abnormal-S segments: each picks a random normal
/// segment and replaces its tail with random legitimate calls. Segments
/// that happen to equal their source are re-rolled (a few retries), since
/// an unchanged segment is not abnormal.
std::vector<EventSegment> generate_abnormal_s(
    const std::vector<EventSegment>& normal_segments,
    const std::vector<LegitimateCall>& legitimate, std::size_t count,
    Rng& rng, const AbnormalSOptions& options = {});

}  // namespace cmarkov::attack
