// Service-level observability for cmarkovd: a lock-free fixed-bucket
// latency histogram plus the point-in-time ServiceMetrics snapshot the
// protocol's METRICS command renders. Field semantics are documented in
// docs/SERVING.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace cmarkov::serve {

/// Fixed-bucket histogram over microsecond latencies. Recording is a single
/// relaxed atomic increment, safe from any number of worker threads;
/// quantiles are approximate (they report the upper bound of the bucket in
/// which the requested rank falls). The last bucket is open-ended and its
/// quantile saturates at kOverflowMicros.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 20;
  static constexpr double kOverflowMicros = 2e6;

  /// Upper bucket bounds in microseconds (1us .. 1s, log-ish spacing); the
  /// final entry is the open-ended overflow bucket.
  static const std::array<double, kBuckets>& bucket_bounds();

  LatencyHistogram();

  void record(double micros);

  std::uint64_t samples() const;

  /// Approximate q-quantile for q in [0, 1]; 0 when empty.
  double quantile_micros(double q) const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_;
};

/// Point-in-time snapshot of a SessionManager. Counters are monotonically
/// increasing over the manager's lifetime; queue_depths is instantaneous.
struct ServiceMetrics {
  double uptime_seconds = 0.0;
  std::size_t sessions_open = 0;
  std::uint64_t events_enqueued = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t events_dropped = 0;   ///< evicted by the drop-oldest policy
  std::uint64_t events_rejected = 0;  ///< refused by the reject policy
  std::uint64_t windows_scored = 0;
  std::uint64_t alarms = 0;
  /// events_processed / uptime_seconds (lifetime average).
  double events_per_second = 0.0;
  /// Instantaneous per-worker queue depths, indexed by shard.
  std::vector<std::size_t> queue_depths;
  std::uint64_t latency_samples = 0;
  /// Enqueue-to-verdict latency quantiles (microseconds, approximate).
  double p50_latency_micros = 0.0;
  double p99_latency_micros = 0.0;

  /// Renders the snapshot as one "key=value ..." line (the body of the
  /// protocol METRICS reply).
  std::string to_line() const;
};

}  // namespace cmarkov::serve
