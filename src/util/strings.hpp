// Small string helpers shared by the MiniC front end, trace formats and
// table printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cmarkov {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Joins items with the separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` ends with `suffix`.
bool ends_with(std::string_view text, std::string_view suffix);

/// Formats a double with fixed precision (no locale surprises).
std::string format_double(double value, int precision);

/// Formats a probability in scientific notation suited to FP/FN tables,
/// e.g. "3.2e-05"; exact zero prints as "0".
std::string format_probability(double value);

}  // namespace cmarkov
