#include "src/trace/interpreter.hpp"

#include <stdexcept>

namespace cmarkov::trace {

namespace {

std::int64_t apply_binary(ir::BinaryOp op, std::int64_t a, std::int64_t b) {
  switch (op) {
    case ir::BinaryOp::kAdd: return a + b;
    case ir::BinaryOp::kSub: return a - b;
    case ir::BinaryOp::kMul: return a * b;
    case ir::BinaryOp::kDiv: return b == 0 ? 0 : a / b;
    case ir::BinaryOp::kMod: return b == 0 ? 0 : a % b;
    case ir::BinaryOp::kLt: return a < b ? 1 : 0;
    case ir::BinaryOp::kLe: return a <= b ? 1 : 0;
    case ir::BinaryOp::kGt: return a > b ? 1 : 0;
    case ir::BinaryOp::kGe: return a >= b ? 1 : 0;
    case ir::BinaryOp::kEq: return a == b ? 1 : 0;
    case ir::BinaryOp::kNe: return a != b ? 1 : 0;
    case ir::BinaryOp::kAnd: return (a != 0 && b != 0) ? 1 : 0;
    case ir::BinaryOp::kOr: return (a != 0 || b != 0) ? 1 : 0;
  }
  return 0;
}

struct Frame {
  const cfg::FunctionCfg* function = nullptr;
  cfg::BlockId block = 0;
  std::size_t instr_index = 0;
  std::vector<std::int64_t> registers;
  /// Destination register in the caller for the return value.
  cfg::RegId return_dst = 0;
  bool has_return_dst = false;
  /// Address of the call site that created this frame (0 for the entry
  /// frame); recorded into events as the grandparent context.
  std::uint64_t call_site_address = 0;
};

}  // namespace

Interpreter::Interpreter(const cfg::ModuleCfg& module,
                         InterpreterOptions options)
    : module_(module), options_(options), fn_index_(module.index_by_name()) {}

RunResult Interpreter::run(std::span<const std::int64_t> inputs,
                           ExternalEnvironment& environment,
                           CoverageTracker* coverage) const {
  RunResult result;
  result.trace.program = module_.program_name;

  auto fn_it = fn_index_.find(module_.entry_point);
  if (fn_it == fn_index_.end()) {
    throw std::invalid_argument("Interpreter: entry point '" +
                                module_.entry_point + "' not found");
  }

  std::size_t input_pos = 0;
  auto next_input = [&]() -> std::int64_t {
    if (input_pos < inputs.size()) return inputs[input_pos++];
    return options_.exhausted_input_value;
  };

  std::vector<Frame> stack;
  auto push_frame = [&](const cfg::FunctionCfg& fn,
                        std::span<const std::int64_t> args,
                        cfg::RegId return_dst, bool has_return_dst,
                        std::uint64_t call_site_address) {
    Frame frame;
    frame.function = &fn;
    frame.block = fn.entry;
    frame.registers.assign(fn.num_registers, 0);
    for (std::size_t i = 0; i < args.size() && i < fn.params.size(); ++i) {
      frame.registers[i] = args[i];
    }
    frame.return_dst = return_dst;
    frame.has_return_dst = has_return_dst;
    frame.call_site_address = call_site_address;
    stack.push_back(std::move(frame));
    if (coverage != nullptr) coverage->on_block(fn.name, fn.entry);
  };

  push_frame(module_.functions[fn_it->second], {}, 0, false, 0);

  auto do_return = [&](std::int64_t value) {
    const bool has_dst = stack.back().has_return_dst;
    const cfg::RegId dst = stack.back().return_dst;
    stack.pop_back();
    if (stack.empty()) {
      result.completed = true;
      result.exit_value = value;
      return;
    }
    if (has_dst) stack.back().registers[dst] = value;
  };

  while (!stack.empty()) {
    if (++result.steps > options_.max_steps) {
      result.hit_step_limit = true;
      break;
    }
    Frame& frame = stack.back();
    const cfg::FunctionCfg& fn = *frame.function;
    const cfg::BasicBlock& block = fn.block(frame.block);

    if (frame.instr_index < block.instructions.size()) {
      const cfg::Instr& instr = block.instructions[frame.instr_index++];
      auto& regs = frame.registers;
      bool frame_changed = false;
      std::visit(
          [&](const auto& op) {
            using T = std::decay_t<decltype(op)>;
            if constexpr (std::is_same_v<T, cfg::ConstInstr>) {
              regs[op.dst] = op.value;
            } else if constexpr (std::is_same_v<T, cfg::MoveInstr>) {
              regs[op.dst] = regs[op.src];
            } else if constexpr (std::is_same_v<T, cfg::BinInstr>) {
              regs[op.dst] = apply_binary(op.op, regs[op.lhs], regs[op.rhs]);
            } else if constexpr (std::is_same_v<T, cfg::UnInstr>) {
              regs[op.dst] = op.op == ir::UnaryOp::kNeg
                                 ? -regs[op.src]
                                 : (regs[op.src] == 0 ? 1 : 0);
            } else if constexpr (std::is_same_v<T, cfg::InputInstr>) {
              regs[op.dst] = next_input();
            } else if constexpr (std::is_same_v<T, cfg::ExternalCallInstr>) {
              std::vector<std::int64_t> args;
              args.reserve(op.args.size());
              for (cfg::RegId r : op.args) args.push_back(regs[r]);
              CallEvent event;
              event.kind = op.kind;
              event.name = op.callee;
              event.site_address = op.address;
              event.grandparent_address = frame.call_site_address;
              result.trace.events.push_back(std::move(event));
              regs[op.dst] =
                  environment.on_external_call(op.kind, op.callee, args);
            } else if constexpr (std::is_same_v<T, cfg::InternalCallInstr>) {
              if (stack.size() >= options_.max_call_depth) {
                result.hit_depth_limit = true;
                regs[op.dst] = 0;  // treat as failed call; keep running
                return;
              }
              auto callee_it = fn_index_.find(op.callee);
              if (callee_it == fn_index_.end()) {
                throw std::invalid_argument("Interpreter: unknown callee '" +
                                            op.callee + "'");
              }
              std::vector<std::int64_t> args;
              args.reserve(op.args.size());
              for (cfg::RegId r : op.args) args.push_back(regs[r]);
              push_frame(module_.functions[callee_it->second], args, op.dst,
                         true, op.address);
              frame_changed = true;
            }
          },
          instr);
      if (frame_changed) continue;
      continue;
    }

    // Block instructions exhausted: apply the terminator.
    const cfg::Terminator& term = block.terminator;
    if (const auto* jump = std::get_if<cfg::JumpTerm>(&term)) {
      frame.block = jump->target;
      frame.instr_index = 0;
      if (coverage != nullptr) coverage->on_block(fn.name, frame.block);
    } else if (const auto* branch = std::get_if<cfg::BranchTerm>(&term)) {
      const bool taken = frame.registers[branch->condition] != 0;
      if (coverage != nullptr) coverage->on_branch(fn.name, frame.block, taken);
      frame.block = taken ? branch->if_true : branch->if_false;
      frame.instr_index = 0;
      if (coverage != nullptr) coverage->on_block(fn.name, frame.block);
    } else {
      const auto& ret = std::get<cfg::ReturnTerm>(term);
      const std::int64_t value =
          ret.value.has_value() ? frame.registers[*ret.value] : 0;
      do_return(value);
    }
  }
  return result;
}

}  // namespace cmarkov::trace
