// Table II: clustering-based state reduction for the libcall models of
// bash, vim and proftpd — distinct calls, states after clustering, and the
// estimated training-time reduction 1 - (k/N)^2 implied by the O(T S^2)
// per-iteration cost. Also measures the actual per-iteration Baum-Welch
// speedup, which the paper's estimate approximates.
#include <iostream>

#include "src/core/pipeline.hpp"
#include "src/eval/comparison.hpp"
#include "src/workload/suite_synthetic.hpp"
#include "src/hmm/trainer.hpp"
#include "src/trace/segmenter.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

namespace {

/// Wall time of one Baum-Welch iteration over the segments.
double one_iteration_seconds(const hmm::Hmm& model,
                             const std::vector<hmm::ObservationSeq>& data) {
  hmm::TrainingOptions options;
  options.max_iterations = 1;
  options.min_improvement = -1.0;
  Stopwatch watch;
  hmm::Trainer trainer(model, options);
  trainer.fit(data);
  return watch.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = eval::full_mode_enabled(argc, argv);
  std::cout << "=== Table II: clustering for state reduction, libcall "
               "models (" << (full ? "full" : "quick") << " mode) ===\n";
  std::cout << "Paper reference: bash 1366->455 (88.91%), vim 829->415 "
               "(74.94%), proftpd 1115->372 (88.87%).\n\n";

  TablePrinter table({"Program", "Model", "# distinct calls",
                      "# states after clustering",
                      "Estimated training time reduction",
                      "Measured per-iteration speedup"});

  // The hand-written analogues are far smaller than the real binaries, so
  // their reductions are forced (min_calls_for_reduction = 0); the
  // generated "synthetic-large" program exceeds the paper's N > 800 gate
  // naturally, exercising the default clustering trigger at true scale.
  std::vector<std::pair<std::string, workload::ProgramSuite>> programs;
  for (const auto& name : {"bash", "vim", "proftpd"}) {
    programs.emplace_back(name, workload::make_suite(name));
  }
  programs.emplace_back("synthetic-large",
                        workload::make_synthetic_suite());

  for (auto& [name, suite] : programs) {
    Rng rng(7);

    // Paper ratios: bash/proftpd 1/3, vim 1/2.
    const double fraction = name == "vim" ? 0.5 : 1.0 / 3.0;

    core::PipelineConfig unclustered;
    unclustered.filter = analysis::CallFilter::kLibcalls;
    unclustered.clustering.min_calls_for_reduction =
        static_cast<std::size_t>(-1);
    const auto base = core::run_static_pipeline(suite.module(), unclustered,
                                                rng);

    core::PipelineConfig clustered = unclustered;
    clustered.clustering.min_calls_for_reduction = 0;
    clustered.clustering.target_fraction = fraction;
    const auto reduced = core::run_static_pipeline(suite.module(), clustered,
                                                   rng);

    const double n = static_cast<double>(base.init.model.num_states());
    const double k = static_cast<double>(reduced.init.model.num_states());
    const double estimated = 1.0 - (k / n) * (k / n);

    // Measured: one Baum-Welch iteration over shared libcall segments,
    // encoded per model alphabet.
    const auto collection =
        workload::collect_traces(suite, full ? 60 : 15, 11);
    const std::size_t cap = full ? 400 : 120;
    auto encode_for = [&](const core::StaticPipelineResult& pipeline) {
      hmm::Alphabet alphabet = pipeline.alphabet;
      trace::SegmentSet set;
      for (const auto& t : collection.traces) {
        set.add_trace(trace::encode_trace(
            t, analysis::CallFilter::kLibcalls,
            hmm::ObservationEncoding::kContextSensitive, alphabet));
      }
      auto segments = set.to_vector();
      if (segments.size() > cap) segments.resize(cap);
      return segments;
    };
    const double base_time =
        one_iteration_seconds(base.init.model, encode_for(base));
    const double reduced_time =
        one_iteration_seconds(reduced.init.model, encode_for(reduced));
    const double speedup = base_time / std::max(reduced_time, 1e-9);

    table.add_row({suite.info().name, "CMarkov-libcall",
                   std::to_string(base.init.model.num_states()),
                   std::to_string(reduced.init.model.num_states()),
                   format_double(estimated * 100.0, 2) + "%",
                   format_double(speedup, 1) + "x"});
  }
  table.print();
  std::cout << "\nShape check: with k in [N/3, N/2] the estimated reduction\n"
               "lands in the paper's 75-89% band by construction; the\n"
               "measured per-iteration speedup should track 1/(1-reduction)\n"
               "(the O(T S^2) term dominating Baum-Welch).\n";
  return 0;
}
