// Observation alphabet: interning of call observation strings to dense ids.
//
// The four compared models differ in how a call event maps to an observation
// symbol: context-sensitive models (CMarkov, Regular-context) observe
// "name@caller", context-insensitive ones (STILO, Regular-basic) observe
// "name". ObservationEncoding fixes that mapping in one place so static
// initialization and trace encoding agree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/context.hpp"

namespace cmarkov::hmm {

// Two finer-than-paper granularities exist as extensions, both testing the
// paper's position that 1-level caller context is the sweet spot:
//  - kSiteSensitive (program-counter context a la Sekar's FSA): the
//    observation also carries the call-site address, distinguishing
//    same-named calls within one function;
//  - kDeepContext (VtPath-style 2-level stack context): the observation
//    carries the caller AND the caller's caller.
// Only trace encoding can produce these observations (the static model
// merges sites and keeps 1 level by design), so they are used with
// randomly initialized models.
enum class ObservationEncoding {
  kContextSensitive,
  kContextFree,
  kSiteSensitive,
  kDeepContext,
};

std::string observation_encoding_name(ObservationEncoding encoding);

/// Renders one call event as an observation string. For kSiteSensitive use
/// encode_site_observation (this overload has no site address and falls
/// back to caller context).
std::string encode_observation(const std::string& call_name,
                               const std::string& caller,
                               ObservationEncoding encoding);

/// Site-granular observation: "name@caller+0x<site>".
std::string encode_site_observation(const std::string& call_name,
                                    const std::string& caller,
                                    std::uint64_t site_address);

/// Renders a static-analysis call symbol as an observation string (must be
/// an external symbol).
std::string encode_observation(const analysis::CallSymbol& symbol,
                               ObservationEncoding encoding);

/// Bidirectional string <-> id mapping. Ids are dense and stable in
/// insertion order.
class Alphabet {
 public:
  /// Returns the id for `symbol`, inserting it if new.
  std::size_t intern(const std::string& symbol);

  /// Id of an existing symbol, or nullopt.
  std::optional<std::size_t> find(const std::string& symbol) const;

  const std::string& name(std::size_t id) const;

  std::size_t size() const { return symbols_.size(); }

  const std::vector<std::string>& symbols() const { return symbols_; }

 private:
  std::vector<std::string> symbols_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace cmarkov::hmm
