#include "src/analysis/aggregation.hpp"

#include <stdexcept>

namespace cmarkov::analysis {

CalleeSummary summarize_callee(const CallTransitionMatrix& resolved) {
  CalleeSummary summary;
  std::size_t entry_idx = static_cast<std::size_t>(-1);
  std::size_t exit_idx = static_cast<std::size_t>(-1);
  for (std::size_t i = 0; i < resolved.size(); ++i) {
    const auto kind = resolved.symbol(i).kind;
    if (kind == CallSymbol::Kind::kEntry) entry_idx = i;
    if (kind == CallSymbol::Kind::kExit) exit_idx = i;
    if (kind == CallSymbol::Kind::kInternal) {
      throw std::invalid_argument(
          "summarize_callee: matrix still has internal symbol " +
          resolved.symbol(i).to_string());
    }
  }
  if (entry_idx == static_cast<std::size_t>(-1) ||
      exit_idx == static_cast<std::size_t>(-1)) {
    throw std::invalid_argument("summarize_callee: missing ENTRY/EXIT");
  }

  for (const auto& [to, p] : resolved.row(entry_idx)) {
    if (to == exit_idx) {
      summary.pass_through = p;
    } else {
      summary.entry_dist.emplace_back(resolved.symbol(to), p);
    }
  }
  for (std::size_t r = 0; r < resolved.size(); ++r) {
    if (r == entry_idx || r == exit_idx) continue;
    for (const auto& [to, p] : resolved.row(r)) {
      if (to == exit_idx) {
        summary.exit_counts.emplace_back(resolved.symbol(r), p);
      } else if (to != entry_idx) {
        summary.inner.emplace_back(resolved.symbol(r), resolved.symbol(to),
                                   p);
      }
    }
  }
  return summary;
}

namespace {

/// Sparse distribution over symbols of the output matrix.
using SymbolDist = std::vector<std::pair<std::size_t, double>>;

}  // namespace

CallTransitionMatrix resolve_internal_symbol(const CallTransitionMatrix& matrix,
                                             const CallSymbol& site,
                                             const CalleeSummary* summary) {
  const std::size_t s = matrix.index_of(site);

  // Copy all symbols except the site into the output; remember the mapping.
  CallTransitionMatrix out;
  constexpr std::size_t kDropped = static_cast<std::size_t>(-1);
  std::vector<std::size_t> remap(matrix.size(), kDropped);
  for (std::size_t i = 0; i < matrix.size(); ++i) {
    if (i != s) remap[i] = out.add_symbol(matrix.symbol(i));
  }

  // Pure pass-through summary stands in for recursive callees.
  static const CalleeSummary kPassThrough{{}, 1.0, {}, {}};
  if (summary == nullptr) summary = &kPassThrough;

  // Register the callee's symbols (entry distribution / inner / exit rows
  // may introduce calls not yet present in the caller's matrix).
  auto sym_idx = [&](const CallSymbol& sym) { return out.add_symbol(sym); };

  // Copy every cell not touching the site.
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    if (r == s) continue;
    for (const auto& [c, p] : matrix.row(r)) {
      if (c == s) continue;
      out.add_prob(remap[r], remap[c], p);
    }
  }

  const double w_in = matrix.col_sum(s);   // total invocations of the site
  const double w_out = matrix.row_sum(s);  // mass leaving the site
  const double pass = summary->pass_through;

  // Conditional next-target distribution after the site returns.
  double q_self = 0.0;
  SymbolDist q_other;  // targets != s, in output indices
  if (w_out > 0.0) {
    for (const auto& [c, p] : matrix.row(s)) {
      if (c == s) {
        q_self = p / w_out;
      } else {
        q_other.emplace_back(remap[c], p / w_out);
      }
    }
  }

  // Entry distribution in output indices.
  SymbolDist entry_dist;
  for (const auto& [sym, p] : summary->entry_dist) {
    entry_dist.emplace_back(sym_idx(sym), p);
  }

  // rho: distribution over the next observable event from the site-return
  // point, with silent re-invocation chains (prob q_self * pass each) closed
  // geometrically:
  //   rho = (q_other + q_self * entry_dist) / (1 - q_self * pass)
  SymbolDist rho;
  const double silent_loop = q_self * pass;
  if (silent_loop < 1.0 - 1e-12) {
    const double scale = 1.0 / (1.0 - silent_loop);
    for (const auto& [t, p] : q_other) rho.emplace_back(t, p * scale);
    for (const auto& [t, p] : entry_dist) {
      rho.emplace_back(t, q_self * p * scale);
    }
  }
  // else: mass is trapped in an endless silent loop; drop it.

  // sigma: distribution over the next observable event from the moment the
  // site is entered: first call of the invocation, or (silently) whatever
  // follows the site.
  SymbolDist sigma = entry_dist;
  for (const auto& [t, p] : rho) sigma.emplace_back(t, pass * p);

  // 1) Redirect incoming transitions x -> s through sigma.
  for (std::size_t r = 0; r < matrix.size(); ++r) {
    if (r == s) continue;
    const auto& row = matrix.row(r);
    auto it = row.find(s);
    if (it == row.end()) continue;
    const double p_in = it->second;
    for (const auto& [t, p] : sigma) out.add_prob(remap[r], t, p_in * p);
  }
  // Incoming mass from the site itself (s -> s) is part of w_in and is
  // already accounted for by the geometric closure in rho.

  if (w_in > 0.0) {
    // 2) Inner transitions of the callee, once per invocation.
    for (const auto& [a, b, p] : summary->inner) {
      out.add_prob(sym_idx(a), sym_idx(b), w_in * p);
    }
    // 3) Last-call-to-return events chain into whatever follows the site.
    for (const auto& [a, x] : summary->exit_counts) {
      const std::size_t from = sym_idx(a);
      for (const auto& [t, p] : rho) out.add_prob(from, t, w_in * x * p);
    }
    // 4) Entries that arrive via sigma above used per-entry mass; entries
    // caused by silent chains are already inside rho. Nothing further.
  }
  return out;
}

AggregatedProgram aggregate_program(const cfg::ModuleCfg& module,
                                    const cfg::CallGraph& call_graph,
                                    const BranchHeuristic& heuristic,
                                    const FunctionMatrixOptions& options,
                                    PhaseTimer* timings) {
  AggregatedProgram result;
  std::map<std::string, CalleeSummary> summaries;

  // Tarjan order is callees-first (see CallGraph::scc_order).
  for (const auto& scc : call_graph.scc_order()) {
    for (const auto& fn_name : scc) {
      const cfg::FunctionCfg& fn = module.require(fn_name);
      Stopwatch probability_watch;
      CallTransitionMatrix matrix =
          function_call_transitions(fn, heuristic, options);
      if (timings != nullptr) {
        timings->add("probability", probability_watch.seconds());
      }

      Stopwatch aggregation_watch;
      // Resolve internal symbols until none remain. Same-SCC callees (and
      // self-recursion) have no summary yet and become pass-through.
      while (true) {
        const CallSymbol* pending = nullptr;
        for (std::size_t i = 0; i < matrix.size(); ++i) {
          if (matrix.symbol(i).kind == CallSymbol::Kind::kInternal) {
            pending = &matrix.symbol(i);
            break;
          }
        }
        if (pending == nullptr) break;
        const CallSymbol site = *pending;
        const CalleeSummary* summary = nullptr;
        if (!call_graph.in_cycle_with(fn_name, site.name)) {
          auto it = summaries.find(site.name);
          if (it != summaries.end()) summary = &it->second;
        }
        matrix = resolve_internal_symbol(matrix, site, summary);
      }

      summaries.emplace(fn_name, summarize_callee(matrix));
      result.per_function.emplace(fn_name, std::move(matrix));
      if (timings != nullptr) {
        timings->add("aggregation", aggregation_watch.seconds());
      }
    }
  }

  auto it = result.per_function.find(module.entry_point);
  if (it == result.per_function.end()) {
    throw std::invalid_argument("aggregate_program: entry point '" +
                                module.entry_point + "' not in module");
  }
  result.program_matrix = it->second;
  return result;
}

}  // namespace cmarkov::analysis
