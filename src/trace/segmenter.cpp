#include "src/trace/segmenter.hpp"

#include <stdexcept>

namespace cmarkov::trace {

std::vector<hmm::ObservationSeq> segment_sequence(
    const hmm::ObservationSeq& encoded, const SegmentOptions& options) {
  if (options.length == 0 || options.stride == 0) {
    throw std::invalid_argument("segment_sequence: length/stride must be > 0");
  }
  std::vector<hmm::ObservationSeq> out;
  if (encoded.empty()) return out;
  if (encoded.size() < options.length) {
    if (options.keep_short_tail) out.push_back(encoded);
    return out;
  }
  for (std::size_t start = 0; start + options.length <= encoded.size();
       start += options.stride) {
    out.emplace_back(encoded.begin() + static_cast<std::ptrdiff_t>(start),
                     encoded.begin() +
                         static_cast<std::ptrdiff_t>(start + options.length));
  }
  return out;
}

std::size_t SegmentSet::add_trace(const hmm::ObservationSeq& encoded) {
  std::size_t added = 0;
  for (auto& segment : segment_sequence(encoded, options_)) {
    if (add_segment(std::move(segment))) ++added;
  }
  return added;
}

bool SegmentSet::add_segment(hmm::ObservationSeq segment) {
  ++total_seen_;
  return segments_.insert(std::move(segment)).second;
}

std::vector<hmm::ObservationSeq> SegmentSet::to_vector() const {
  return {segments_.begin(), segments_.end()};
}

}  // namespace cmarkov::trace
