// n-gram segmentation of call traces. The paper trains and classifies on
// sliding windows of 15 calls, with duplicate segments removed from
// training data to avoid bias.
#pragma once

#include <cstddef>
#include <set>
#include <vector>

#include "src/hmm/hmm.hpp"

namespace cmarkov::trace {

struct SegmentOptions {
  std::size_t length = 15;  ///< the paper's n
  std::size_t stride = 1;   ///< sliding-window step
  /// Also emit a final shorter segment when the trace is shorter than
  /// `length` (short traces would otherwise contribute nothing).
  bool keep_short_tail = true;
};

/// Cuts one encoded trace into segments.
std::vector<hmm::ObservationSeq> segment_sequence(
    const hmm::ObservationSeq& encoded, const SegmentOptions& options = {});

/// Accumulates unique segments across traces (training-set deduplication).
class SegmentSet {
 public:
  explicit SegmentSet(SegmentOptions options = {}) : options_(options) {}

  /// Segments `encoded` and inserts each segment once. Returns how many new
  /// unique segments were added.
  std::size_t add_trace(const hmm::ObservationSeq& encoded);

  /// Inserts one pre-cut segment.
  bool add_segment(hmm::ObservationSeq segment);

  std::size_t size() const { return segments_.size(); }
  std::size_t total_seen() const { return total_seen_; }

  /// Unique segments in insertion-independent (sorted) order.
  std::vector<hmm::ObservationSeq> to_vector() const;

 private:
  SegmentOptions options_;
  std::set<hmm::ObservationSeq> segments_;
  std::size_t total_seen_ = 0;
};

}  // namespace cmarkov::trace
