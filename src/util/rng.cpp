#include "src/util/rng.hpp"

#include <numeric>

namespace cmarkov {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

std::size_t Rng::index(std::size_t n) {
  if (n == 0) throw std::invalid_argument("Rng::index: n == 0");
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::gaussian(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

std::size_t Rng::session_length(std::size_t min_len, double mean_extra) {
  if (mean_extra <= 0.0) return min_len;
  std::geometric_distribution<std::size_t> dist(1.0 / (mean_extra + 1.0));
  return min_len + dist(engine_);
}

std::size_t Rng::weighted_index(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (weights.empty() || total <= 0.0) {
    throw std::invalid_argument("Rng::weighted_index: no positive weight");
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack: land on the last bucket
}

Rng Rng::fork() {
  const std::uint64_t child_seed =
      engine_() ^ 0x9e3779b97f4a7c15ULL;  // golden-ratio mix decorrelates
  return Rng(child_seed);
}

}  // namespace cmarkov
