// Shared driver for the Figure 2-5 benches: runs the four-model comparison
// on a list of programs for one call stream and prints, per program, the
// FN-at-matched-FP series each figure plots.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "src/eval/comparison.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"

namespace cmarkov::benchfig {

inline void run_figure(const std::string& figure_label,
                       const std::vector<std::string>& programs,
                       analysis::CallFilter filter, int argc, char** argv) {
  const bool full = eval::full_mode_enabled(argc, argv);
  eval::ComparisonOptions options = eval::default_comparison_options(full);

  std::cout << "=== " << figure_label << " ("
            << analysis::call_filter_name(filter) << " models, "
            << (full ? "full" : "quick") << " mode) ===\n";
  std::cout << "Series: false negative rate at matched false positive "
               "rate; lower is better.\n\n";

  const std::vector<double> fp_grid = {0.001, 0.005, 0.01, 0.02, 0.05, 0.1};

  for (const auto& program : programs) {
    const workload::ProgramSuite suite = workload::make_suite(program);
    const eval::SuiteComparison comparison =
        eval::compare_models(suite, filter, options);

    std::cout << "--- " << program << " (traces=" << comparison.traces
              << ", unique normal segments="
              << comparison.unique_normal_segments
              << ", abnormal segments=" << comparison.abnormal_segments
              << ") ---\n";
    std::vector<std::string> headers = {"Model", "N states", "M symbols"};
    for (double fp : fp_grid) {
      headers.push_back("FN@FP=" + format_double(fp, 3));
    }
    headers.push_back("AUC");
    TablePrinter table(std::move(headers));
    for (const auto& model : comparison.models) {
      std::vector<std::string> row = {eval::model_kind_name(model.kind),
                                      std::to_string(model.num_states),
                                      std::to_string(model.alphabet_size)};
      for (double fp : fp_grid) {
        row.push_back(format_double(eval::fn_at_fp(model.scores, fp), 4));
      }
      row.push_back(format_double(eval::detection_auc(model.scores), 4));
      table.add_row(std::move(row));
    }
    table.print();
    std::cout << "\n";
  }
}

}  // namespace cmarkov::benchfig
