// Service-level observability for cmarkovd, built on the shared obs layer
// (src/obs/): the SessionManager keeps its counters/gauges/latency
// histogram in an obs::MetricsRegistry, and ServiceMetrics is the
// point-in-time snapshot struct that benches consume and the protocol's
// STATS/METRICS verbs render. Field semantics are documented in
// docs/SERVING.md.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace cmarkov::serve {

/// Upper bucket bounds (microseconds) of the enqueue-to-verdict latency
/// histogram: 1us .. 2s, log-ish spacing. Values above the last bound land
/// in the histogram's overflow bucket and quantiles saturate at 2e6.
std::span<const double> latency_bucket_bounds();

/// Point-in-time snapshot of a SessionManager. Counters are monotonically
/// increasing over the manager's lifetime; queue_depths is instantaneous.
struct ServiceMetrics {
  double uptime_seconds = 0.0;
  std::size_t sessions_open = 0;
  std::uint64_t events_enqueued = 0;
  std::uint64_t events_processed = 0;
  std::uint64_t events_dropped = 0;   ///< evicted by the drop-oldest policy
  std::uint64_t events_rejected = 0;  ///< refused by the reject policy
  std::uint64_t windows_scored = 0;
  std::uint64_t alarms = 0;
  /// events_processed / uptime_seconds (lifetime average).
  double events_per_second = 0.0;
  /// Instantaneous per-worker queue depths, indexed by shard.
  std::vector<std::size_t> queue_depths;
  std::uint64_t latency_samples = 0;
  /// Enqueue-to-verdict latency quantiles (microseconds, approximate).
  double p50_latency_micros = 0.0;
  double p99_latency_micros = 0.0;

  /// Renders the snapshot as one versioned "v=1 key=value ..." line (the
  /// legacy body of the protocol STATS reply; the METRICS verb now renders
  /// the full registry via obs::to_kv_line).
  std::string to_line() const;
};

}  // namespace cmarkov::serve
