#include "src/linalg/kmeans.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/obs/metrics_registry.hpp"
#include "src/util/parallel.hpp"

namespace cmarkov {

namespace {

/// Samples per parallel work item. Fixed (thread-count-independent) so the
/// inertia reduction merges the same chunk partials in the same order no
/// matter how many workers run.
constexpr std::size_t kSampleChunk = 64;

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    total += d * d;
  }
  return total;
}

/// k-means++ seeding: first centroid uniform, later centroids proportional
/// to squared distance from the nearest chosen centroid.
Matrix seed_centroids(const Matrix& samples, std::size_t k, Rng& rng,
                      WorkerPool& pool) {
  Matrix centroids(k, samples.cols());
  std::vector<std::size_t> chosen;
  chosen.push_back(rng.index(samples.rows()));

  std::vector<double> best_dist(samples.rows(),
                                std::numeric_limits<double>::max());
  while (chosen.size() < k) {
    const auto last = samples.row(chosen.back());
    pool.run(chunk_count(samples.rows(), kSampleChunk), [&](std::size_t c) {
      const ChunkRange range =
          chunk_range(samples.rows(), kSampleChunk, c);
      for (std::size_t i = range.begin; i < range.end; ++i) {
        best_dist[i] =
            std::min(best_dist[i], squared_distance(samples.row(i), last));
      }
    });
    double total = 0.0;
    for (double d : best_dist) total += d;
    if (total <= 0.0) {
      // All remaining points coincide with a centroid; pick arbitrarily.
      chosen.push_back(rng.index(samples.rows()));
    } else {
      chosen.push_back(rng.weighted_index(best_dist));
    }
  }
  for (std::size_t c = 0; c < k; ++c) {
    const auto src = samples.row(chosen[c]);
    std::copy(src.begin(), src.end(), centroids.row(c).begin());
  }
  return centroids;
}

KMeansResult run_once(const Matrix& samples, std::size_t k, Rng& rng,
                      const KMeansOptions& options, WorkerPool& pool) {
  KMeansResult result;
  result.centroids = seed_centroids(samples, k, rng, pool);
  result.assignment.assign(samples.rows(), 0);

  const std::size_t chunks = chunk_count(samples.rows(), kSampleChunk);
  std::vector<unsigned char> chunk_changed(chunks);

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Assignment: each sample's nearest centroid is independent (ties break
    // toward the lowest centroid id in every schedule), so the parallel
    // sweep matches the sequential one exactly.
    pool.run(chunks, [&](std::size_t chunk) {
      const ChunkRange range =
          chunk_range(samples.rows(), kSampleChunk, chunk);
      unsigned char any = 0;
      for (std::size_t i = range.begin; i < range.end; ++i) {
        std::size_t best = 0;
        double best_d = std::numeric_limits<double>::max();
        for (std::size_t c = 0; c < k; ++c) {
          const double d =
              squared_distance(samples.row(i), result.centroids.row(c));
          if (d < best_d) {
            best_d = d;
            best = c;
          }
        }
        if (result.assignment[i] != best) {
          result.assignment[i] = best;
          any = 1;
        }
      }
      chunk_changed[chunk] = any;
    });
    bool changed = std::any_of(chunk_changed.begin(), chunk_changed.end(),
                               [](unsigned char c) { return c != 0; });

    Matrix next(k, samples.cols());
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < samples.rows(); ++i) {
      const std::size_t c = result.assignment[i];
      counts[c] += 1;
      auto dst = next.row(c);
      const auto src = samples.row(i);
      for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster with the sample farthest from its
        // current centroid, so every cluster stays non-empty.
        std::size_t farthest = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < samples.rows(); ++i) {
          const double d = squared_distance(
              samples.row(i), result.centroids.row(result.assignment[i]));
          if (d > far_d) {
            far_d = d;
            farthest = i;
          }
        }
        const auto src = samples.row(farthest);
        std::copy(src.begin(), src.end(), next.row(c).begin());
        result.assignment[farthest] = c;
        changed = true;
      } else {
        auto dst = next.row(c);
        for (double& v : dst) v /= static_cast<double>(counts[c]);
      }
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      movement +=
          squared_distance(next.row(c), result.centroids.row(c));
    }
    result.centroids = std::move(next);
    if (!changed || movement < options.movement_tolerance) break;
  }

  // Inertia: per-chunk partial sums merged in chunk order, so the total has
  // one canonical floating-point association at every thread count.
  std::vector<double> chunk_inertia(chunks, 0.0);
  pool.run(chunks, [&](std::size_t chunk) {
    const ChunkRange range = chunk_range(samples.rows(), kSampleChunk, chunk);
    double partial = 0.0;
    for (std::size_t i = range.begin; i < range.end; ++i) {
      partial += squared_distance(
          samples.row(i), result.centroids.row(result.assignment[i]));
    }
    chunk_inertia[chunk] = partial;
  });
  result.inertia = 0.0;
  for (double partial : chunk_inertia) result.inertia += partial;
  return result;
}

}  // namespace

KMeansResult kmeans(const Matrix& samples, std::size_t k, Rng& rng,
                    const KMeansOptions& options) {
  if (k == 0 || k > samples.rows()) {
    throw std::invalid_argument("kmeans: need 1 <= k <= #samples");
  }
  WorkerPool pool(options.exec.threads);
  KMeansResult best;
  bool have_best = false;
  const std::size_t restarts = std::max<std::size_t>(options.restarts, 1);
  for (std::size_t r = 0; r < restarts; ++r) {
    KMeansResult candidate = run_once(samples, k, rng, options, pool);
    if (!have_best || candidate.inertia < best.inertia) {
      best = std::move(candidate);
      have_best = true;
    }
  }
  if (options.exec.metrics != nullptr) {
    auto& m = *options.exec.metrics;
    m.counter("cmarkov_kmeans_runs_total").add(1);
    m.counter("cmarkov_kmeans_iterations_total").add(best.iterations);
    m.gauge("cmarkov_kmeans_inertia").set(best.inertia);
  }
  return best;
}

}  // namespace cmarkov
