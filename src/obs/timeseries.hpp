// Rolling time-series windows over MetricsRegistry instruments — the data
// behind the admin plane's /varz endpoint and `cmarkov top`.
//
// The registry's instruments are monotonic counters and instantaneous
// gauges: perfect for Prometheus, useless for "what is happening right
// now" questions (ev/s over the last minute, p99 of the last 30 seconds).
// TimeSeriesCollector fixes that off the hot path: a dedicated thread
// snapshots the registry every `period_seconds` into fixed-size
// TimeSeriesRings and derives rates, deltas, and *windowed* histogram
// quantiles (bucket-count deltas between the oldest and newest sample in
// the ring, so p50/p90/p99 describe the ring's window, not
// since-process-start). Instruments pay nothing: sampling reads the same
// relaxed atomics any scrape does, and the rings live behind one collector
// mutex nothing on the serving hot path ever touches.
//
// Determinism: sample_now(t) takes an explicit timestamp, so tests drive
// the collector without the thread and pin exact rates; varz_json() output
// is sorted and locale-independent like every exporter in src/obs.
#pragma once

#include <cstdint>
#include <functional>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/obs/metrics_registry.hpp"

namespace cmarkov::obs {

/// One (time, value) sample.
struct TimePoint {
  double t_seconds = 0.0;
  double value = 0.0;
};

/// Fixed-capacity ring of samples with rate/delta derivation. Not
/// thread-safe on its own — the collector serializes access under its
/// mutex; standalone users do their own locking.
class TimeSeriesRing {
 public:
  explicit TimeSeriesRing(std::size_t capacity);

  void push(double t_seconds, double value);

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Oldest / newest retained sample. Undefined when empty.
  TimePoint oldest() const;
  TimePoint newest() const;

  /// Newest value; 0 when empty.
  double latest() const;
  /// newest - oldest over the retained window; 0 with < 2 samples.
  double delta() const;
  /// delta() divided by the window's time span; 0 with < 2 samples or a
  /// zero-width window. For monotonic counters this is the windowed rate.
  double rate_per_second() const;

  /// Retained samples, oldest first.
  std::vector<TimePoint> samples() const;

 private:
  std::vector<TimePoint> buf_;
  std::size_t head_ = 0;  // index of the oldest sample
  std::size_t count_ = 0;
};

/// Conservative bucket quantile (same contract as Histogram::quantile,
/// which only works on a live instrument): smallest bound covering
/// quantile `q` of `counts`, saturating at the last finite bound for mass
/// in the trailing overflow bucket. `counts` has bounds.size() + 1
/// entries; returns 0 on an empty distribution.
double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts, double q);

struct CollectorOptions {
  /// Samples retained per instrument: the derivation window is
  /// ring_capacity * period_seconds (default 120 s).
  std::size_t ring_capacity = 120;
  /// Collector thread sampling period.
  double period_seconds = 1.0;
  /// Ran on the collector thread immediately before each snapshot —
  /// cmarkovd hooks the serve gauge refresh here so sampled gauges are
  /// live. May be empty. Must not call back into the collector.
  std::function<void()> pre_sample;
  /// Optional instrument filter (null = sample everything).
  std::function<bool(std::string_view name)> filter;
};

/// Windowed derivations for one histogram (over the ring's span).
struct HistogramWindow {
  std::uint64_t count = 0;        ///< lifetime count at the newest sample
  std::uint64_t count_delta = 0;  ///< recorded within the window
  double rate_per_second = 0.0;   ///< count_delta / window span
  double p50 = 0.0;               ///< quantiles of the windowed deltas;
  double p90 = 0.0;               ///< fall back to lifetime distribution
  double p99 = 0.0;               ///< until the ring has 2 samples
};

class TimeSeriesCollector {
 public:
  /// Samples `registry` (which must outlive the collector). Construction
  /// does not start the thread — call start(), or drive sample_now()
  /// manually (tests, single-shot tools).
  TimeSeriesCollector(const MetricsRegistry& registry,
                      CollectorOptions options = {});
  ~TimeSeriesCollector();
  TimeSeriesCollector(const TimeSeriesCollector&) = delete;
  TimeSeriesCollector& operator=(const TimeSeriesCollector&) = delete;

  /// Spawns the collector thread (idempotent).
  void start();
  /// Stops and joins the thread (idempotent; the destructor calls it).
  void stop();

  /// Takes one sample at timestamp `t_seconds` (monotonic, caller's
  /// choice of clock — the thread uses an internal stopwatch). Safe
  /// concurrently with varz_json() and the thread.
  void sample_now(double t_seconds);

  std::uint64_t samples_taken() const;
  const CollectorOptions& options() const { return options_; }

  /// The /varz document: every sampled instrument with its latest value
  /// and windowed derivations. Schema "cmarkov.varz.v1"; sorted keys,
  /// format_metric_value numbers (docs/OBSERVABILITY.md).
  std::string varz_json() const;

  // Introspection for tests and `cmarkov top` fallbacks. All return 0 for
  // unknown names.
  double counter_rate(std::string_view name) const;
  double counter_latest(std::string_view name) const;
  double gauge_latest(std::string_view name) const;
  HistogramWindow histogram_window(std::string_view name) const;

 private:
  struct HistSample {
    double t_seconds = 0.0;
    std::uint64_t count = 0;
    std::vector<std::uint64_t> buckets;
  };
  struct HistSeries {
    std::vector<double> bounds;
    std::deque<HistSample> ring;  // capped at ring_capacity
  };

  void thread_main();
  HistogramWindow window_locked(const HistSeries& series) const;

  const MetricsRegistry& registry_;
  const CollectorOptions options_;

  mutable std::mutex mu_;
  std::map<std::string, TimeSeriesRing, std::less<>> counters_;
  std::map<std::string, TimeSeriesRing, std::less<>> gauges_;
  std::map<std::string, HistSeries, std::less<>> histograms_;
  std::uint64_t samples_ = 0;
  double last_t_seconds_ = 0.0;

  std::mutex thread_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  bool started_ = false;
  std::thread thread_;
};

}  // namespace cmarkov::obs
