#include "src/obs/trace/decision_log.hpp"

namespace cmarkov::obs {

std::string DecisionLog::to_jsonl() const {
  std::string out;
  for (const DecisionRecord& record : log_.snapshot()) {
    out += decision_record_json(record);
    out += '\n';
  }
  return out;
}

}  // namespace cmarkov::obs
