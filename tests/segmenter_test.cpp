// Unit tests for n-gram segmentation and training-set deduplication.
#include <gtest/gtest.h>

#include "src/trace/segmenter.hpp"

namespace cmarkov::trace {
namespace {

hmm::ObservationSeq iota_sequence(std::size_t n) {
  hmm::ObservationSeq seq(n);
  for (std::size_t i = 0; i < n; ++i) seq[i] = i;
  return seq;
}

TEST(SegmenterTest, SlidingWindowsOfPaperLength) {
  const auto segments = segment_sequence(iota_sequence(20));
  // 20 - 15 + 1 sliding windows.
  ASSERT_EQ(segments.size(), 6u);
  for (const auto& s : segments) EXPECT_EQ(s.size(), 15u);
  EXPECT_EQ(segments[0][0], 0u);
  EXPECT_EQ(segments[5][0], 5u);
  EXPECT_EQ(segments[5][14], 19u);
}

TEST(SegmenterTest, StrideSkipsWindows) {
  SegmentOptions options;
  options.length = 4;
  options.stride = 3;
  const auto segments = segment_sequence(iota_sequence(10), options);
  ASSERT_EQ(segments.size(), 3u);  // starts 0, 3, 6
  EXPECT_EQ(segments[1][0], 3u);
}

TEST(SegmenterTest, ShortTraceKeptAsTailWhenEnabled) {
  SegmentOptions options;
  options.length = 15;
  options.keep_short_tail = true;
  const auto kept = segment_sequence(iota_sequence(7), options);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].size(), 7u);

  options.keep_short_tail = false;
  EXPECT_TRUE(segment_sequence(iota_sequence(7), options).empty());
}

TEST(SegmenterTest, EmptyAndExactLengthTraces) {
  EXPECT_TRUE(segment_sequence({}).empty());
  SegmentOptions options;
  options.length = 5;
  const auto exact = segment_sequence(iota_sequence(5), options);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0].size(), 5u);
}

TEST(SegmenterTest, RejectsZeroLengthOrStride) {
  SegmentOptions bad;
  bad.length = 0;
  EXPECT_THROW(segment_sequence(iota_sequence(5), bad),
               std::invalid_argument);
  bad.length = 5;
  bad.stride = 0;
  EXPECT_THROW(segment_sequence(iota_sequence(5), bad),
               std::invalid_argument);
}

TEST(SegmentSetTest, DeduplicatesAcrossTraces) {
  SegmentOptions options;
  options.length = 3;
  SegmentSet set(options);
  const hmm::ObservationSeq trace = {1, 2, 3, 1, 2, 3, 1, 2, 3};
  // Windows: 123 231 312 123 231 312 123 -> 3 unique.
  const std::size_t added = set.add_trace(trace);
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_EQ(set.total_seen(), 7u);
  // Adding the same trace again adds nothing new.
  EXPECT_EQ(set.add_trace(trace), 0u);
  EXPECT_EQ(set.size(), 3u);
}

TEST(SegmentSetTest, AddSegmentReportsNovelty) {
  SegmentSet set;
  EXPECT_TRUE(set.add_segment({1, 2, 3}));
  EXPECT_FALSE(set.add_segment({1, 2, 3}));
  EXPECT_TRUE(set.add_segment({1, 2, 4}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(SegmentSetTest, ToVectorIsSortedAndStable) {
  SegmentSet set;
  set.add_segment({2, 1});
  set.add_segment({1, 2});
  set.add_segment({1, 1});
  const auto segments = set.to_vector();
  ASSERT_EQ(segments.size(), 3u);
  EXPECT_TRUE(std::is_sorted(segments.begin(), segments.end()));
}

}  // namespace
}  // namespace cmarkov::trace
