// Scaled forward/backward recursions. Scaling (Rabiner's c_t normalization)
// keeps 15-call segment likelihoods representable; log-likelihood is
// recovered as -sum(log c_t). A segment containing a symbol the model gives
// zero probability scores -infinity (the "impossible" verdict that drives
// the paper's detection of out-of-alphabet / out-of-context calls).
#pragma once

#include <span>

#include "src/hmm/hmm.hpp"

namespace cmarkov::hmm {

struct ForwardResult {
  /// alpha(t, i): scaled probability of being in state i after t+1 symbols.
  Matrix alpha;
  /// Scale factors c_t; empty iff the sequence was empty.
  std::vector<double> scales;
  /// log P(observations | model); -infinity when impossible.
  double log_likelihood = 0.0;
  /// True when some prefix had zero total probability.
  bool impossible = false;
};

/// Forward pass. Observations must be valid alphabet ids (< num_symbols).
ForwardResult forward_scaled(const Hmm& model,
                             std::span<const std::size_t> observations);

/// Backward pass reusing the forward scale factors. Returns beta(t, i).
/// Must not be called for impossible sequences.
Matrix backward_scaled(const Hmm& model,
                       std::span<const std::size_t> observations,
                       std::span<const double> scales);

/// Convenience: log P(observations | model), -infinity when impossible.
double sequence_log_likelihood(const Hmm& model,
                               std::span<const std::size_t> observations);

/// P(observations | model) in linear space (may underflow to 0 for long
/// sequences; fine for the paper's 15-call segments).
double sequence_probability(const Hmm& model,
                            std::span<const std::size_t> observations);

}  // namespace cmarkov::hmm
