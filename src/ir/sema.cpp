#include "src/ir/sema.hpp"

#include <map>
#include <set>

#include "src/util/strings.hpp"

namespace cmarkov::ir {

SemaError::SemaError(std::vector<std::string> diagnostics)
    : std::runtime_error("semantic errors:\n  " + join(diagnostics, "\n  ")),
      diagnostics_(std::move(diagnostics)) {}

namespace {

class Checker {
 public:
  Checker(const Program& program, const std::string& entry_point)
      : program_(program), entry_point_(entry_point) {}

  std::vector<std::string> run() {
    collect_signatures();
    check_entry_point();
    for (const auto& fn : program_.functions) check_function(fn);
    return std::move(diagnostics_);
  }

 private:
  void error(int line, const std::string& message) {
    diagnostics_.push_back("line " + std::to_string(line) + ": " + message);
  }

  void collect_signatures() {
    for (const auto& fn : program_.functions) {
      auto [it, inserted] = arity_.emplace(fn.name, fn.params.size());
      (void)it;
      if (!inserted) {
        error(fn.line, "duplicate function '" + fn.name + "'");
      }
    }
  }

  void check_entry_point() {
    auto it = arity_.find(entry_point_);
    if (it == arity_.end()) {
      diagnostics_.push_back("program has no entry function '" +
                             entry_point_ + "'");
    } else if (it->second != 0) {
      diagnostics_.push_back("entry function '" + entry_point_ +
                             "' must take no parameters");
    }
  }

  void check_function(const Function& fn) {
    std::set<std::string> declared(fn.params.begin(), fn.params.end());
    if (declared.size() != fn.params.size()) {
      error(fn.line, "duplicate parameter name in '" + fn.name + "'");
    }
    check_block(fn.body, declared, fn);
  }

  void check_block(const BlockStmt& block, std::set<std::string>& declared,
                   const Function& fn) {
    for (const auto& stmt : block.statements) {
      check_stmt(*stmt, declared, fn);
    }
  }

  void check_stmt(const Stmt& stmt, std::set<std::string>& declared,
                  const Function& fn) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarDeclStmt>) {
            if (node.init) check_expr(*node.init, declared, fn);
            if (!declared.insert(node.name).second) {
              error(stmt.line, "redeclaration of '" + node.name + "' in '" +
                                   fn.name + "'");
            }
          } else if constexpr (std::is_same_v<T, AssignStmt>) {
            check_expr(*node.value, declared, fn);
            if (!declared.contains(node.name)) {
              error(stmt.line, "assignment to undeclared variable '" +
                                   node.name + "' in '" + fn.name + "'");
            }
          } else if constexpr (std::is_same_v<T, IfStmt>) {
            check_expr(*node.condition, declared, fn);
            check_block(node.then_block, declared, fn);
            if (node.else_block) check_block(*node.else_block, declared, fn);
          } else if constexpr (std::is_same_v<T, WhileStmt>) {
            check_expr(*node.condition, declared, fn);
            check_block(node.body, declared, fn);
          } else if constexpr (std::is_same_v<T, ReturnStmt>) {
            if (node.value) check_expr(*node.value, declared, fn);
          } else {
            check_expr(*node.expr, declared, fn);
          }
        },
        stmt.node);
  }

  void check_expr(const Expr& expr, const std::set<std::string>& declared,
                  const Function& fn) {
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, VarRef>) {
            if (!declared.contains(node.name)) {
              error(expr.line, "use of undeclared variable '" + node.name +
                                   "' in '" + fn.name + "'");
            }
          } else if constexpr (std::is_same_v<T, BinaryExpr>) {
            check_expr(*node.lhs, declared, fn);
            check_expr(*node.rhs, declared, fn);
          } else if constexpr (std::is_same_v<T, UnaryExpr>) {
            check_expr(*node.operand, declared, fn);
          } else if constexpr (std::is_same_v<T, ExternalCallExpr>) {
            if (node.name.empty()) {
              error(expr.line, "external call with empty name in '" +
                                   fn.name + "'");
            }
            for (const auto& a : node.args) check_expr(*a, declared, fn);
          } else if constexpr (std::is_same_v<T, InternalCallExpr>) {
            auto it = arity_.find(node.callee);
            if (it == arity_.end()) {
              error(expr.line, "call to undefined function '" + node.callee +
                                   "' in '" + fn.name + "'");
            } else if (it->second != node.args.size()) {
              error(expr.line,
                    "call to '" + node.callee + "' with " +
                        std::to_string(node.args.size()) +
                        " argument(s), expected " + std::to_string(it->second));
            }
            for (const auto& a : node.args) check_expr(*a, declared, fn);
          }
          // IntLiteral / InputExpr need no checks.
        },
        expr.node);
  }

  const Program& program_;
  std::string entry_point_;
  std::map<std::string, std::size_t> arity_;
  std::vector<std::string> diagnostics_;
};

}  // namespace

std::vector<std::string> check_program(const Program& program,
                                       const std::string& entry_point) {
  return Checker(program, entry_point).run();
}

void require_valid(const Program& program, const std::string& entry_point) {
  auto diagnostics = check_program(program, entry_point);
  if (!diagnostics.empty()) throw SemaError(std::move(diagnostics));
}

}  // namespace cmarkov::ir
