// Bit-identity tests for the parallel training engine: Baum-Welch, holdout
// scoring, the cached forward/backward kernels, k-means and PCA must all
// produce byte-for-byte identical results at every thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/hmm/baum_welch.hpp"  // mean_log_likelihood
#include "src/hmm/forward_backward.hpp"
#include "src/hmm/trainer.hpp"
#include "src/hmm/random_init.hpp"
#include "src/linalg/kmeans.hpp"
#include "src/linalg/pca.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::hmm {
namespace {

std::vector<ObservationSeq> random_sequences(std::size_t count,
                                             std::size_t length,
                                             std::size_t num_symbols,
                                             Rng& rng) {
  std::vector<ObservationSeq> out;
  for (std::size_t s = 0; s < count; ++s) {
    ObservationSeq seq(length);
    for (auto& x : seq) x = rng.index(num_symbols);
    out.push_back(std::move(seq));
  }
  return out;
}

struct TrainRun {
  Hmm model;
  TrainingReport report;
};

TrainRun train_with_threads(const Hmm& initial,
                            const std::vector<ObservationSeq>& data,
                            const std::vector<ObservationSeq>& holdout,
                            std::size_t num_threads) {
  TrainRun run;
  TrainingOptions options;
  options.max_iterations = 6;
  options.min_improvement = -1.0;  // run every iteration
  options.exec.threads = num_threads;
  Trainer trainer(initial, options);
  run.report = trainer.fit(data, holdout);
  run.model = trainer.model();
  return run;
}

void expect_identical(const TrainRun& a, const TrainRun& b) {
  EXPECT_EQ(a.model.transition, b.model.transition);
  EXPECT_EQ(a.model.emission, b.model.emission);
  EXPECT_EQ(a.model.initial, b.model.initial);
  EXPECT_EQ(a.report.iterations, b.report.iterations);
  EXPECT_EQ(a.report.converged, b.report.converged);
  EXPECT_EQ(a.report.skipped_sequences, b.report.skipped_sequences);
  // Vector equality here is bitwise double equality, element by element.
  EXPECT_EQ(a.report.train_log_likelihood, b.report.train_log_likelihood);
  EXPECT_EQ(a.report.holdout_log_likelihood, b.report.holdout_log_likelihood);
}

TEST(ParallelTrainingTest, BitIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const Hmm initial = randomly_initialized_hmm(12, 9, rng);
  const auto data = random_sequences(60, 18, 9, rng);

  const TrainRun reference = train_with_threads(initial, data, {}, 1);
  for (std::size_t threads : {2u, 8u}) {
    const TrainRun run = train_with_threads(initial, data, {}, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(reference, run);
  }
}

TEST(ParallelTrainingTest, BitIdenticalWithHoldout) {
  Rng rng(23);
  const Hmm initial = randomly_initialized_hmm(8, 6, rng);
  const auto data = random_sequences(40, 15, 6, rng);
  const auto holdout = random_sequences(10, 15, 6, rng);

  const TrainRun reference = train_with_threads(initial, data, holdout, 1);
  for (std::size_t threads : {2u, 8u}) {
    const TrainRun run = train_with_threads(initial, data, holdout, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(reference, run);
  }
}

/// Makes the last symbol unemittable (probability zero in every state)
/// while keeping emission rows normalized, so sequences containing it are
/// rejected as impossible.
Hmm without_last_symbol(Hmm model) {
  const std::size_t last = model.num_symbols() - 1;
  for (std::size_t i = 0; i < model.num_states(); ++i) {
    model.emission(i, 0) += model.emission(i, last);
    model.emission(i, last) = 0.0;
  }
  return model;
}

TEST(ParallelTrainingTest, BitIdenticalWithRejectedSequences) {
  Rng rng(37);
  const Hmm initial = without_last_symbol(randomly_initialized_hmm(6, 5, rng));
  auto data = random_sequences(25, 12, 4, rng);
  data.insert(data.begin() + 3, ObservationSeq{});         // empty
  data.insert(data.begin() + 9, ObservationSeq{4, 1, 2});  // impossible
  auto holdout = random_sequences(8, 12, 4, rng);
  holdout.push_back(ObservationSeq{});

  const TrainRun reference = train_with_threads(initial, data, holdout, 1);
  EXPECT_GT(reference.report.skipped_sequences, 0u);
  for (std::size_t threads : {2u, 8u}) {
    const TrainRun run = train_with_threads(initial, data, holdout, threads);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(reference, run);
  }
}

TEST(ParallelTrainingTest, MeanLogLikelihoodMatchesSequentialBitwise) {
  Rng rng(5);
  const Hmm model = without_last_symbol(randomly_initialized_hmm(10, 7, rng));
  auto data = random_sequences(33, 14, 6, rng);
  data.push_back(ObservationSeq{6});  // impossible: zero-emission symbol

  const double sequential = mean_log_likelihood(model, data, -1e4, 1);
  for (std::size_t threads : {2u, 8u}) {
    EXPECT_EQ(mean_log_likelihood(model, data, -1e4, threads), sequential);
  }
}

TEST(ParallelTrainingTest, MeanLogLikelihoodPenalizesEmptySequences) {
  Rng rng(5);
  const Hmm model = randomly_initialized_hmm(4, 3, rng);
  const auto data = random_sequences(4, 10, 3, rng);
  const double without_empty = mean_log_likelihood(model, data);

  auto with_empty = data;
  with_empty.push_back(ObservationSeq{});
  const double with_empty_mean = mean_log_likelihood(model, with_empty);
  // An empty sequence must drag the mean toward the penalty, not count as
  // a perfect (log-likelihood 0) observation.
  EXPECT_LT(with_empty_mean, without_empty);
  const double expected =
      (without_empty * static_cast<double>(data.size()) + -1e4) /
      static_cast<double>(with_empty.size());
  EXPECT_NEAR(with_empty_mean, expected, 1e-9);
}

TEST(CachedKernelTest, ForwardBackwardMatchesUncachedBitwise) {
  Rng rng(71);
  const Hmm model = randomly_initialized_hmm(14, 11, rng);
  const HmmKernelCache cache(model);
  for (int trial = 0; trial < 5; ++trial) {
    ObservationSeq seq(20);
    for (auto& x : seq) x = rng.index(model.num_symbols());

    const ForwardResult plain = forward_scaled(model, seq);
    const ForwardResult cached = forward_scaled(model, seq, cache);
    EXPECT_EQ(plain.alpha, cached.alpha);
    EXPECT_EQ(plain.scales, cached.scales);
    EXPECT_EQ(plain.log_likelihood, cached.log_likelihood);

    const Matrix beta_plain = backward_scaled(model, seq, plain.scales);
    const Matrix beta_cached =
        backward_scaled(model, seq, plain.scales, cache);
    EXPECT_EQ(beta_plain, beta_cached);
  }
}

}  // namespace
}  // namespace cmarkov::hmm

namespace cmarkov {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = rng.uniform();
    }
  }
  return m;
}

TEST(ParallelKMeansTest, DeterministicAcrossThreadCounts) {
  Rng data_rng(3);
  const Matrix samples = random_matrix(90, 12, data_rng);

  KMeansOptions options;
  options.exec.threads = 1;
  Rng rng_a(42);
  const KMeansResult reference = kmeans(samples, 7, rng_a, options);

  options.exec.threads = 4;
  Rng rng_b(42);
  const KMeansResult threaded = kmeans(samples, 7, rng_b, options);

  EXPECT_EQ(reference.assignment, threaded.assignment);
  EXPECT_EQ(reference.centroids, threaded.centroids);
  EXPECT_EQ(reference.inertia, threaded.inertia);
  EXPECT_EQ(reference.iterations, threaded.iterations);
}

TEST(ParallelPcaTest, TruncatedPathDeterministicAcrossThreadCounts) {
  Rng rng(9);
  // 180 columns exceeds exact_dimension_limit (160), forcing the truncated
  // orthogonal-iteration path whose covariance step is parallelized.
  const Matrix samples = random_matrix(60, 180, rng);

  PcaOptions options;
  options.max_components = 8;
  options.exec.threads = 1;
  const Pca reference = Pca::fit(samples, options);

  options.exec.threads = 4;
  const Pca threaded = Pca::fit(samples, options);

  EXPECT_EQ(reference.basis(), threaded.basis());
  EXPECT_EQ(reference.explained_variance_ratio(),
            threaded.explained_variance_ratio());

  const Matrix projected_1 = reference.transform(samples, 1);
  const Matrix projected_4 = reference.transform(samples, 4);
  EXPECT_EQ(projected_1, projected_4);
}

}  // namespace
}  // namespace cmarkov
