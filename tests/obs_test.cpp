// Tests for the observability layer (src/obs/): exact counters under
// concurrent writers, histogram bucketing/validation/merging, RunProfile
// span nesting, golden-file pins for the three exporters, and an
// end-to-end instrumented-pipeline property (stage spans sum to ~total).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/detector.hpp"
#include "src/obs/export.hpp"
#include "src/obs/metrics_registry.hpp"
#include "src/obs/run_profile.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::obs {
namespace {

std::string read_golden(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(CMARKOV_TEST_GOLDEN_DIR) / name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CounterTest, ExactUnderEightConcurrentWriters) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("cmarkov_test_hits_total");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 100000;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (std::size_t i = 0; i < kPerThread; ++i) counter.add(1);
    });
  }
  for (auto& w : writers) w.join();
  // Sharded cells must merge to the exact total once writers quiesce.
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(CounterTest, DeltaAddsAccumulate) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("cmarkov_test_bytes_total");
  counter.add(10);
  counter.add(32);
  counter.add();  // default +1
  EXPECT_EQ(counter.value(), 43u);
  // Same name resolves to the same instrument.
  EXPECT_EQ(&registry.counter("cmarkov_test_bytes_total"), &counter);
}

TEST(GaugeTest, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("cmarkov_test_depth");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(4.5);
  EXPECT_EQ(gauge.value(), 4.5);
  gauge.add(-1.25);
  EXPECT_EQ(gauge.value(), 3.25);
}

TEST(MetricNameTest, InvalidNamesAreRejected) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.counter(""), std::invalid_argument);
  EXPECT_THROW(registry.counter("has space"), std::invalid_argument);
  EXPECT_THROW(registry.gauge("has-dash"), std::invalid_argument);
  EXPECT_NO_THROW(registry.counter("ok_name:subsystem_total"));
}

TEST(HistogramTest, BucketBoundsAreValidated) {
  // The ISSUE-4 bugfix: bad bucket layouts fail loudly at construction
  // instead of silently mis-bucketing forever.
  EXPECT_THROW(Histogram(std::span<const double>{}), std::invalid_argument);
  const double unordered[] = {1.0, 3.0, 2.0};
  EXPECT_THROW(Histogram{unordered}, std::invalid_argument);
  const double duplicated[] = {1.0, 1.0};
  EXPECT_THROW(Histogram{duplicated}, std::invalid_argument);
  const double infinite[] = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(Histogram{infinite}, std::invalid_argument);
  const double ok[] = {0.5, 1.0, 2.0};
  EXPECT_NO_THROW(Histogram{ok});
}

TEST(HistogramTest, ReRegistrationWithDifferentBoundsThrows) {
  MetricsRegistry registry;
  const double a[] = {1.0, 2.0};
  const double b[] = {1.0, 3.0};
  Histogram& first = registry.histogram("cmarkov_test_seconds", a);
  EXPECT_EQ(&registry.histogram("cmarkov_test_seconds", a), &first);
  EXPECT_THROW(registry.histogram("cmarkov_test_seconds", b),
               std::invalid_argument);
}

TEST(HistogramTest, BucketingAndQuantiles) {
  const double bounds[] = {1.0, 10.0, 100.0};
  Histogram histogram(bounds);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.quantile(0.5), 0.0);  // empty

  histogram.record(1.0);    // boundary value lands in its bucket (le=1)
  histogram.record(0.5);
  histogram.record(5.0);
  histogram.record(50.0);
  histogram.record(1e6);    // overflow
  EXPECT_EQ(histogram.count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 1.0 + 0.5 + 5.0 + 50.0 + 1e6);
  const auto buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.4), 1.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(0.6), 10.0);
  // Quantiles landing in the overflow bucket saturate at the last bound.
  EXPECT_DOUBLE_EQ(histogram.quantile(1.0), 100.0);
  // q is clamped to [0, 1].
  EXPECT_DOUBLE_EQ(histogram.quantile(7.0), 100.0);
  EXPECT_DOUBLE_EQ(histogram.quantile(-1.0), 1.0);
}

TEST(HistogramTest, ConcurrentRecordsMergeExactly) {
  const double bounds[] = {0.5, 1.5, 2.5};
  MetricsRegistry registry;
  Histogram& histogram =
      registry.histogram("cmarkov_test_latency_seconds", bounds);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerValue = 4000;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&histogram] {
      for (std::size_t i = 0; i < kPerValue; ++i) {
        histogram.record(0.0);  // bucket le=0.5
        histogram.record(1.0);  // bucket le=1.5
        histogram.record(2.0);  // bucket le=2.5
        histogram.record(3.0);  // overflow
      }
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(histogram.count(), kThreads * kPerValue * 4);
  const auto buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  for (const auto count : buckets) EXPECT_EQ(count, kThreads * kPerValue);
  EXPECT_DOUBLE_EQ(histogram.sum(),
                   static_cast<double>(kThreads * kPerValue) * 6.0);
}

TEST(RunProfileTest, SpansNestMergeAndOrder) {
  RunProfile profile("run");
  EXPECT_EQ(profile.open_depth(), 1u);  // only the root

  profile.begin("build");
  EXPECT_EQ(profile.open_depth(), 2u);
  profile.record("analyze", 0.5);
  profile.record("reduce", 0.25);
  profile.end(0.75);

  // Same-named sibling merges: seconds accumulate, count ticks.
  for (int i = 0; i < 3; ++i) profile.record("train-iteration", 0.1);
  profile.finish(2.0);

  const TraceSpan& root = profile.root();
  EXPECT_EQ(root.name, "run");
  EXPECT_EQ(root.count, 1u);
  EXPECT_DOUBLE_EQ(root.seconds, 2.0);
  ASSERT_EQ(root.children.size(), 2u);
  // Children keep first-open order.
  EXPECT_EQ(root.children[0].name, "build");
  EXPECT_EQ(root.children[1].name, "train-iteration");

  const TraceSpan* build = root.child("build");
  ASSERT_NE(build, nullptr);
  EXPECT_DOUBLE_EQ(build->seconds, 0.75);
  EXPECT_EQ(build->count, 1u);
  ASSERT_EQ(build->children.size(), 2u);
  EXPECT_EQ(build->children[0].name, "analyze");
  EXPECT_EQ(build->children[1].name, "reduce");

  const TraceSpan* iteration = root.child("train-iteration");
  ASSERT_NE(iteration, nullptr);
  EXPECT_EQ(iteration->count, 3u);
  EXPECT_DOUBLE_EQ(iteration->seconds, 0.1 * 3);
  EXPECT_EQ(root.child("no-such-span"), nullptr);
}

TEST(RunProfileTest, UnbalancedUseIsLoud) {
  RunProfile profile;
  EXPECT_THROW(profile.end(0.0), std::logic_error);  // nothing open
  profile.begin("open");
  EXPECT_THROW(profile.finish(), std::logic_error);  // child still open
  profile.end(0.1);
  EXPECT_NO_THROW(profile.finish());
}

TEST(RunProfileTest, ScopedTimerIsNullSafeAndCloses) {
  { const ScopedTimer noop(nullptr, "ignored"); }  // must not crash

  RunProfile profile;
  {
    const ScopedTimer outer(&profile, "outer");
    const ScopedTimer inner(&profile, "inner");
    EXPECT_EQ(profile.open_depth(), 3u);
  }
  EXPECT_EQ(profile.open_depth(), 1u);
  const TraceSpan* outer = profile.root().child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_NE(outer->child("inner"), nullptr);
  EXPECT_GE(outer->seconds, outer->child("inner")->seconds);
}

/// Deterministic registry used by the exporter golden tests.
void fill_exporter_registry(MetricsRegistry& registry) {
  registry.counter("cmarkov_test_requests_total").add(3);
  registry.counter("cmarkov_test_errors_total").add(1);
  registry.gauge("cmarkov_test_queue_depth").set(2.5);
  const double bounds[] = {0.001, 0.01, 0.1, 1.0};
  Histogram& latency =
      registry.histogram("cmarkov_test_latency_seconds", bounds);
  latency.record(0.0005);
  latency.record(0.005);
  latency.record(0.005);
  latency.record(0.05);
  latency.record(2.0);  // overflow
}

TEST(ExportTest, PrometheusMatchesGolden) {
  MetricsRegistry registry;
  fill_exporter_registry(registry);
  EXPECT_EQ(to_prometheus(registry), read_golden("metrics.prom"));
}

TEST(ExportTest, KvLineMatchesGolden) {
  MetricsRegistry registry;
  fill_exporter_registry(registry);
  // to_kv_line has no trailing newline; the golden file is \n-terminated.
  EXPECT_EQ(to_kv_line(registry) + "\n", read_golden("metrics.kv"));
}

TEST(ExportTest, ProfileJsonMatchesGolden) {
  RunProfile profile("train");
  profile.begin("build");
  profile.record("analyze", 0.5);
  profile.record("reduce", 0.25);
  profile.end(0.75);
  profile.record("train", 1.25);
  profile.finish(2.0);
  EXPECT_EQ(run_profile_json(profile, nullptr), read_golden("profile.json"));
}

TEST(ExportTest, ProfileJsonEmbedsMetricsSection) {
  MetricsRegistry registry;
  registry.counter("cmarkov_test_ticks_total").add(2);
  RunProfile profile;
  profile.finish(1.0);
  const std::string json = run_profile_json(profile, &registry);
  EXPECT_NE(json.find("\"schema\":\"cmarkov.profile.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":{\"counters\":{\"cmarkov_test_ticks_total\":2}"),
            std::string::npos)
      << json;
}

// End-to-end: the instrumented build+train path used by
// `cmarkov train --profile-json`, with a threaded pool sharing one
// registry (also the TSan smoke target for the obs layer). The contiguous
// stage spans must account for (nearly) the whole run — the acceptance
// bound for the profile export is 5%.
TEST(ObsIntegrationTest, InstrumentedPipelineStagesSumToTotal) {
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  MetricsRegistry registry;
  RunProfile profile("train");

  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 4;
  config.pipeline.exec.threads = 4;
  config.pipeline.exec.metrics = &registry;
  config.pipeline.exec.profile = &profile;
  config.training.exec.threads = 4;
  config.training.exec.metrics = &registry;
  config.training.exec.profile = &profile;

  std::optional<core::Detector> detector;
  {
    const ScopedTimer span(&profile, "build");
    detector.emplace(core::Detector::build(suite.module(), config));
  }
  std::vector<trace::Trace> traces;
  {
    const ScopedTimer span(&profile, "collect-traces");
    traces = workload::collect_traces(suite, 20, 91).traces;
  }
  {
    const ScopedTimer span(&profile, "train");
    detector->train(traces);
  }
  profile.finish();

  const TraceSpan& root = profile.root();
  const TraceSpan* build = root.child("build");
  ASSERT_NE(build, nullptr);
  EXPECT_NE(build->child("analyze"), nullptr);
  EXPECT_NE(build->child("init"), nullptr);
  const TraceSpan* train = root.child("train");
  ASSERT_NE(train, nullptr);
  const TraceSpan* iteration = train->child("train-iteration");
  ASSERT_NE(iteration, nullptr);
  EXPECT_GE(iteration->count, 1u);
  EXPECT_NE(iteration->child("e-step"), nullptr);
  EXPECT_NE(iteration->child("m-step"), nullptr);

  double stage_sum = 0.0;
  for (const auto& child : root.children) stage_sum += child.seconds;
  ASSERT_GT(root.seconds, 0.0);
  EXPECT_GT(stage_sum, 0.0);
  EXPECT_NEAR(stage_sum / root.seconds, 1.0, 0.05)
      << "stage spans should cover the run (sum=" << stage_sum
      << "s total=" << root.seconds << "s)";

  const auto snap = registry.snapshot();
  EXPECT_EQ(snap.counters.at("cmarkov_pipeline_runs_total"), 1u);
  EXPECT_GE(snap.counters.at("cmarkov_train_iterations_total"), 1u);
  EXPECT_GE(snap.histograms.at("cmarkov_train_estep_seconds").count, 1u);
  // The profile JSON for a real run is well-formed enough to re-export.
  const std::string json = run_profile_json(profile, &registry);
  EXPECT_NE(json.find("\"cmarkov_pipeline_runs_total\":1"), std::string::npos);
}

}  // namespace
}  // namespace cmarkov::obs
