#include "src/cfg/call_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace cmarkov::cfg {

namespace {

/// Iterative Tarjan SCC over function names.
class TarjanScc {
 public:
  TarjanScc(const std::vector<std::string>& nodes,
            const std::map<std::string, std::set<std::string>>& out)
      : nodes_(nodes), out_(out) {
    for (std::size_t i = 0; i < nodes.size(); ++i) index_of_[nodes[i]] = i;
    state_.resize(nodes.size());
  }

  std::vector<std::vector<std::string>> run() {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (state_[i].index == kUnset) strong_connect(i);
    }
    return std::move(sccs_);
  }

 private:
  static constexpr std::size_t kUnset = static_cast<std::size_t>(-1);

  struct NodeState {
    std::size_t index = kUnset;
    std::size_t lowlink = kUnset;
    bool on_stack = false;
  };

  struct Frame {
    std::size_t node;
    std::vector<std::size_t> succs;
    std::size_t next = 0;
  };

  std::vector<std::size_t> successors(std::size_t node) const {
    std::vector<std::size_t> out;
    auto it = out_.find(nodes_[node]);
    if (it == out_.end()) return out;
    for (const auto& callee : it->second) {
      out.push_back(index_of_.at(callee));
    }
    return out;
  }

  void strong_connect(std::size_t root) {
    std::vector<Frame> frames;
    open_node(root);
    frames.push_back({root, successors(root), 0});
    while (!frames.empty()) {
      Frame& top = frames.back();
      if (top.next < top.succs.size()) {
        const std::size_t succ = top.succs[top.next++];
        if (state_[succ].index == kUnset) {
          open_node(succ);
          frames.push_back({succ, successors(succ), 0});
        } else if (state_[succ].on_stack) {
          state_[top.node].lowlink =
              std::min(state_[top.node].lowlink, state_[succ].index);
        }
        continue;
      }
      // All successors processed: close the node.
      const std::size_t node = top.node;
      frames.pop_back();
      if (!frames.empty()) {
        state_[frames.back().node].lowlink = std::min(
            state_[frames.back().node].lowlink, state_[node].lowlink);
      }
      if (state_[node].lowlink == state_[node].index) {
        std::vector<std::string> scc;
        while (true) {
          const std::size_t member = stack_.back();
          stack_.pop_back();
          state_[member].on_stack = false;
          scc.push_back(nodes_[member]);
          if (member == node) break;
        }
        sccs_.push_back(std::move(scc));
      }
    }
  }

  void open_node(std::size_t node) {
    state_[node].index = counter_;
    state_[node].lowlink = counter_;
    ++counter_;
    state_[node].on_stack = true;
    stack_.push_back(node);
  }

  const std::vector<std::string>& nodes_;
  const std::map<std::string, std::set<std::string>>& out_;
  std::map<std::string, std::size_t> index_of_;
  std::vector<NodeState> state_;
  std::vector<std::size_t> stack_;
  std::vector<std::vector<std::string>> sccs_;
  std::size_t counter_ = 0;
};

}  // namespace

CallGraph CallGraph::build(const ModuleCfg& module) {
  CallGraph graph;
  std::set<std::string> known;
  for (const auto& fn : module.functions) {
    graph.functions_.push_back(fn.name);
    known.insert(fn.name);
  }

  std::map<std::pair<std::string, std::string>, std::size_t> site_counts;
  for (const auto& fn : module.functions) {
    for (const auto& block : fn.blocks) {
      const auto* call = block.internal_call();
      if (call == nullptr) continue;
      if (!known.contains(call->callee)) {
        throw std::invalid_argument("call graph: call to unknown function '" +
                                    call->callee + "'");
      }
      site_counts[{fn.name, call->callee}] += 1;
      graph.out_[fn.name].insert(call->callee);
      graph.in_[call->callee].insert(fn.name);
    }
  }
  for (const auto& [pair, count] : site_counts) {
    graph.edges_.push_back({pair.first, pair.second, count});
  }

  // Tarjan emits an SCC only after all SCCs it can reach; that is exactly
  // the callees-first order aggregation wants.
  graph.sccs_ = TarjanScc(graph.functions_, graph.out_).run();
  for (std::size_t i = 0; i < graph.sccs_.size(); ++i) {
    for (const auto& name : graph.sccs_[i]) graph.scc_of_[name] = i;
  }
  return graph;
}

std::vector<std::string> CallGraph::callees(const std::string& caller) const {
  auto it = out_.find(caller);
  if (it == out_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<std::string> CallGraph::callers(const std::string& callee) const {
  auto it = in_.find(callee);
  if (it == in_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

bool CallGraph::has_edge(const std::string& caller,
                         const std::string& callee) const {
  auto it = out_.find(caller);
  return it != out_.end() && it->second.contains(callee);
}

std::set<std::string> CallGraph::reachable_from(
    const std::string& entry) const {
  std::set<std::string> seen;
  std::vector<std::string> frontier{entry};
  while (!frontier.empty()) {
    const std::string fn = std::move(frontier.back());
    frontier.pop_back();
    if (!seen.insert(fn).second) continue;
    for (const auto& callee : callees(fn)) frontier.push_back(callee);
  }
  return seen;
}

bool CallGraph::in_cycle_with(const std::string& a,
                              const std::string& b) const {
  auto ia = scc_of_.find(a);
  auto ib = scc_of_.find(b);
  if (ia == scc_of_.end() || ib == scc_of_.end()) return false;
  if (ia->second != ib->second) return false;
  if (a != b) return true;
  // Same function: a cycle only if it calls itself or sits in a multi-node
  // SCC.
  return sccs_[ia->second].size() > 1 || has_edge(a, a);
}

}  // namespace cmarkov::cfg
