// Tests for the programmatic AST builder and its expression DSL.
#include <gtest/gtest.h>

#include "src/cfg/cfg_builder.hpp"
#include "src/ir/builder.hpp"
#include "src/ir/sema.hpp"
#include "src/trace/interpreter.hpp"

namespace cmarkov::ir {
namespace {

using namespace dsl;

TEST(BuilderTest, BuildsRunnableProgram) {
  FunctionBuilder helper("helper", {"n"});
  helper.ret(add(var("n"), lit(1)));

  FunctionBuilder main_fn("main");
  main_fn.declare("x", lit(41));
  main_fn.assign("x", call("helper", [] {
                    std::vector<ExprPtr> args;
                    args.push_back(var("x"));
                    return args;
                  }()));
  main_fn.ret(var("x"));

  ProgramBuilder program;
  program.add(helper);
  program.add(main_fn);
  const ProgramModule module = program.build_module("built");

  const auto cfg = cfg::build_module_cfg(module);
  const trace::Interpreter interpreter(cfg);
  trace::SeededEnvironment environment(1);
  const auto result = interpreter.run({}, environment);
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.exit_value, 42);
}

TEST(BuilderTest, CallStatementsEmitTraceEvents) {
  FunctionBuilder main_fn("main");
  main_fn.syscall("open").libcall("malloc").syscall("close");
  ProgramBuilder program;
  program.add(main_fn);
  const ProgramModule module = program.build_module("calls");

  const auto cfg = cfg::build_module_cfg(module);
  const trace::Interpreter interpreter(cfg);
  trace::SeededEnvironment environment(1);
  const auto result = interpreter.run({}, environment);
  ASSERT_EQ(result.trace.events.size(), 3u);
  EXPECT_EQ(result.trace.events[0].name, "open");
  EXPECT_EQ(result.trace.events[1].kind, CallKind::kLibcall);
}

TEST(BuilderTest, IfElseAndLoopControlFlow) {
  // sum = sum of 1..n via builder-constructed while loop.
  FunctionBuilder main_fn("main");
  main_fn.declare("n", in());
  main_fn.declare("sum", lit(0));
  std::vector<StmtPtr> body;
  body.push_back(make_assign("sum", add(var("sum"), var("n"))));
  body.push_back(make_assign("n", sub(var("n"), lit(1))));
  main_fn.loop(gt(var("n"), lit(0)), std::move(body));

  std::vector<StmtPtr> then_branch;
  then_branch.push_back(make_return(var("sum")));
  std::vector<StmtPtr> else_branch;
  else_branch.push_back(make_return(lit(0)));
  main_fn.if_else(gt(var("sum"), lit(5)), std::move(then_branch),
                  std::move(else_branch));

  ProgramBuilder program;
  program.add(main_fn);
  const ProgramModule module = program.build_module("loops");

  const auto cfg = cfg::build_module_cfg(module);
  const trace::Interpreter interpreter(cfg);
  trace::SeededEnvironment environment(1);
  EXPECT_EQ(interpreter.run(std::vector<std::int64_t>{4}, environment)
                .exit_value,
            10);
  EXPECT_EQ(interpreter.run(std::vector<std::int64_t>{2}, environment)
                .exit_value,
            0);
}

TEST(BuilderTest, DslOperatorsLowerToExpectedSemantics) {
  FunctionBuilder main_fn("main");
  main_fn.ret(add(mod(lit(17), lit(5)), eq(lit(3), lit(3))));  // 2 + 1
  ProgramBuilder program;
  program.add(main_fn);
  const ProgramModule module = program.build_module("dsl");
  const auto cfg = cfg::build_module_cfg(module);
  const trace::Interpreter interpreter(cfg);
  trace::SeededEnvironment environment(1);
  EXPECT_EQ(interpreter.run({}, environment).exit_value, 3);
}

TEST(BuilderTest, BuildModuleRunsSemanticChecks) {
  FunctionBuilder main_fn("main");
  main_fn.call("missing_function");
  ProgramBuilder program;
  program.add(main_fn);
  EXPECT_THROW(program.build_module("bad"), SemaError);
}

TEST(BuilderTest, BuiltAstRoundTripsThroughSource) {
  FunctionBuilder main_fn("main");
  main_fn.declare("x", in());
  std::vector<StmtPtr> then_branch;
  then_branch.push_back(make_expr_stmt(sys("write")));
  main_fn.if_else(lt(var("x"), lit(10)), std::move(then_branch));
  ProgramBuilder program;
  program.add(main_fn);
  const ProgramModule module = program.build_module("roundtrip");

  // Printed source parses back to an equivalent program.
  const ProgramModule reparsed =
      ProgramModule::from_source("again", module.source());
  EXPECT_EQ(reparsed.stats().statements, module.stats().statements);
  EXPECT_EQ(to_source(reparsed.program()), module.source());
}

}  // namespace
}  // namespace cmarkov::ir
