#include "src/workload/program_suite.hpp"

#include <stdexcept>

#include "src/cfg/cfg_builder.hpp"

namespace cmarkov::workload {

ProgramSuite::ProgramSuite(SuiteInfo info, std::string minic_source,
                           InputSpec inputs)
    : info_(std::move(info)),
      inputs_(inputs),
      module_(ir::ProgramModule::from_source(info_.name,
                                             std::move(minic_source))),
      cfg_(cfg::build_module_cfg(module_)),
      call_graph_(cfg::CallGraph::build(cfg_)) {}

TestCase ProgramSuite::make_test_case(std::size_t index,
                                      std::uint64_t base_seed) const {
  // Each test case gets an independent stream derived from (seed, index) so
  // test cases are stable under reordering.
  Rng rng(base_seed ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  TestCase tc;
  tc.index = index;
  const std::size_t len = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(inputs_.min_inputs),
      static_cast<std::int64_t>(inputs_.max_inputs)));
  tc.inputs.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    tc.inputs.push_back(rng.uniform_int(inputs_.min_value, inputs_.max_value));
  }
  tc.environment_seed = rng.engine()();
  return tc;
}

std::vector<TestCase> ProgramSuite::make_test_cases(
    std::size_t count, std::uint64_t base_seed) const {
  std::vector<TestCase> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(make_test_case(i, base_seed));
  }
  return out;
}

ProgramSuite make_suite(const std::string& name) {
  if (name == "flex") return make_flex_suite();
  if (name == "grep") return make_grep_suite();
  if (name == "gzip") return make_gzip_suite();
  if (name == "sed") return make_sed_suite();
  if (name == "bash") return make_bash_suite();
  if (name == "vim") return make_vim_suite();
  if (name == "proftpd") return make_proftpd_suite();
  if (name == "nginx") return make_nginx_suite();
  throw std::invalid_argument("make_suite: unknown program '" + name + "'");
}

const std::vector<std::string>& all_suite_names() {
  static const std::vector<std::string> names = {
      "flex", "grep", "gzip", "sed", "bash", "vim", "proftpd", "nginx"};
  return names;
}

const std::vector<std::string>& utility_suite_names() {
  static const std::vector<std::string> names = {"flex", "grep", "gzip",
                                                 "sed",  "bash", "vim"};
  return names;
}

const std::vector<std::string>& server_suite_names() {
  static const std::vector<std::string> names = {"proftpd", "nginx"};
  return names;
}

}  // namespace cmarkov::workload
