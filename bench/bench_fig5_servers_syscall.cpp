// Figure 5: proftpd and nginx, system-call models. Expected shape: static
// initialization drives the gap (CMarkov/STILO lower FN than both Regular
// models); context-sensitive and -free state counts are close.
#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  cmarkov::benchfig::run_figure(
      "Figure 5: server programs, syscall accuracy",
      cmarkov::workload::server_suite_names(),
      cmarkov::analysis::CallFilter::kSyscalls, argc, argv);
  return 0;
}
