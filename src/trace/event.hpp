// Trace records produced by monitoring program execution. The pipeline
// mirrors the paper's tooling: the interpreter (strace/ltrace stand-in)
// records each external call with the raw address of its call site; the
// Symbolizer (addr2line stand-in) later resolves addresses to caller
// function names, which become the 1-level calling context.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/context.hpp"
#include "src/hmm/alphabet.hpp"
#include "src/hmm/hmm.hpp"
#include "src/ir/ast.hpp"

namespace cmarkov::trace {

struct CallEvent {
  ir::CallKind kind = ir::CallKind::kSyscall;
  std::string name;
  /// Synthetic code address of the call site (set by the interpreter).
  std::uint64_t site_address = 0;
  /// Caller function; empty until the trace is symbolized.
  std::string caller;
  /// Address of the call site one stack frame up (the site in the caller's
  /// caller that invoked the caller); 0 at the entry function. Enables the
  /// 2-level-context extension (VtPath-style stack context).
  std::uint64_t grandparent_address = 0;
  /// Caller's caller; empty until symbolized ("-" when there is none).
  std::string grandcaller;
};

struct Trace {
  std::string program;
  std::vector<CallEvent> events;

  /// Number of events matching the filter.
  std::size_t count(analysis::CallFilter filter) const;
};

/// Encodes the filtered view of a trace as alphabet ids, interning new
/// observation strings. Context-sensitive encodings require the trace to be
/// symbolized first (every event has a caller).
hmm::ObservationSeq encode_trace(const Trace& trace,
                                 analysis::CallFilter filter,
                                 hmm::ObservationEncoding encoding,
                                 hmm::Alphabet& alphabet);

/// Like encode_trace but never extends the alphabet: events whose
/// observation string is unknown map to `unknown_id` (callers typically pass
/// alphabet.size(), an id the model cannot emit, scoring the segment
/// impossible — exactly how an out-of-context call is detected).
hmm::ObservationSeq encode_trace_frozen(const Trace& trace,
                                        analysis::CallFilter filter,
                                        hmm::ObservationEncoding encoding,
                                        const hmm::Alphabet& alphabet,
                                        std::size_t unknown_id);

}  // namespace cmarkov::trace
