// Tests for the decision audit trail (src/obs/trace/): BoundedLog drop
// accounting under concurrency, Tracer sampling semantics, per-symbol
// forward decompositions that sum exactly to the window log-likelihood,
// DecisionRecord assembly for known/unknown/impossible windows, monitor
// ring sampling, and golden-file pins for the JSONL and Chrome-trace
// sinks. Regenerate goldens with CMARKOV_UPDATE_GOLDEN=1.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "src/core/detector.hpp"
#include "src/core/online_monitor.hpp"
#include "src/hmm/forward_backward.hpp"
#include "src/obs/run_profile.hpp"
#include "src/obs/trace/bounded_log.hpp"
#include "src/obs/trace/chrome_trace.hpp"
#include "src/obs/trace/decision_log.hpp"
#include "src/obs/trace/decision_record.hpp"
#include "src/obs/trace/tracer.hpp"

namespace cmarkov {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void compare_golden(const std::string& name, const std::string& actual) {
  const std::filesystem::path path =
      std::filesystem::path(CMARKOV_TEST_GOLDEN_DIR) / name;
  if (std::getenv("CMARKOV_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    out << actual;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.is_open()) << "missing golden " << path
                            << " (regenerate with CMARKOV_UPDATE_GOLDEN=1)";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), actual);
}

/// Hand-built 2-state / 2-symbol detector; deterministic by construction.
core::Detector tiny_detector(double threshold) {
  hmm::Hmm model;
  model.transition = Matrix::from_rows({{0.7, 0.3}, {0.4, 0.6}});
  model.emission = Matrix::from_rows({{0.9, 0.1}, {0.2, 0.8}});
  model.initial = {0.6, 0.4};
  hmm::Alphabet alphabet;
  alphabet.intern("read@main");
  alphabet.intern("write@main");
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kAll;
  config.segments.length = 3;
  return core::Detector::from_parts(config, std::move(model),
                                    std::move(alphabet), threshold,
                                    /*trained=*/true);
}

trace::CallEvent event(const std::string& name) {
  trace::CallEvent ev;
  ev.name = name;
  ev.caller = "main";
  ev.kind = ir::CallKind::kLibcall;
  return ev;
}

TEST(BoundedLogTest, AppendsThenDropsWithAccounting) {
  obs::BoundedLog<int> log(3);
  EXPECT_TRUE(log.append(10));
  EXPECT_TRUE(log.append(11));
  EXPECT_TRUE(log.append(12));
  EXPECT_FALSE(log.append(13));  // full: flight recorder, not a ring
  EXPECT_FALSE(log.append(14));
  EXPECT_EQ(log.appended(), 3u);
  EXPECT_EQ(log.dropped(), 2u);
  EXPECT_EQ(log.snapshot(), (std::vector<int>{10, 11, 12}));
}

TEST(BoundedLogTest, ZeroCapacityDropsEverything) {
  obs::BoundedLog<int> log(0);
  EXPECT_FALSE(log.append(1));
  EXPECT_EQ(log.appended(), 0u);
  EXPECT_EQ(log.dropped(), 1u);
  EXPECT_TRUE(log.snapshot().empty());
}

TEST(BoundedLogTest, ConcurrentAppendersAccountExactly) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 1000;
  constexpr std::size_t kCapacity = 512;
  obs::BoundedLog<std::size_t> log(kCapacity);
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (std::size_t i = 0; i < kPerThread; ++i) log.append(t * 10000 + i);
    });
  }
  for (auto& w : writers) w.join();
  // Every append either landed or was counted as dropped — no silent loss.
  EXPECT_EQ(log.appended(), kCapacity);
  EXPECT_EQ(log.dropped(), kThreads * kPerThread - kCapacity);
  EXPECT_EQ(log.snapshot().size(), kCapacity);
}

TEST(TracerTest, DisabledTracerSamplesAndRecordsNothing) {
  obs::Tracer tracer({.enabled = false, .sample_every = 1});
  EXPECT_FALSE(tracer.sample(false));
  EXPECT_FALSE(tracer.sample(true));  // force cannot override the switch
  EXPECT_FALSE(tracer.record(obs::SpanRecord{}));
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(TracerTest, PeriodicSamplingAdmitsEveryNth) {
  obs::Tracer tracer({.enabled = true, .sample_every = 3, .capacity = 8});
  std::vector<bool> admitted;
  for (int i = 0; i < 7; ++i) admitted.push_back(tracer.sample(false));
  EXPECT_EQ(admitted,
            (std::vector<bool>{true, false, false, true, false, false, true}));
}

TEST(TracerTest, ExplicitTraceIdBypassesSampling) {
  obs::Tracer tracer({.enabled = true, .sample_every = 0, .capacity = 8});
  EXPECT_FALSE(tracer.sample(false));  // period 0: nothing sampled...
  EXPECT_TRUE(tracer.sample(true));    // ...except forced events
}

TEST(TracerTest, RecordsUntilFullThenCountsDrops) {
  obs::Tracer tracer({.enabled = true, .sample_every = 1, .capacity = 2});
  obs::SpanRecord span;
  span.name = "queue";
  EXPECT_TRUE(tracer.record(span));
  EXPECT_TRUE(tracer.record(span));
  EXPECT_FALSE(tracer.record(span));
  EXPECT_EQ(tracer.recorded(), 2u);
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_EQ(tracer.snapshot().size(), 2u);
}

TEST(ForwardDecompositionTest, ContributionsSumExactlyToLogLikelihood) {
  const core::Detector detector = tiny_detector(-10.0);
  const hmm::ObservationSeq segment{0, 1, 0};
  const hmm::ForwardResult forward =
      hmm::forward_scaled(detector.model(), segment);
  ASSERT_FALSE(forward.impossible);
  const std::vector<double> contributions =
      hmm::per_symbol_log_contributions(forward);
  ASSERT_EQ(contributions.size(), segment.size());
  double sum = 0.0;
  for (double c : contributions) sum += c;
  // Same addends in the same order as the forward pass: bit-identical.
  EXPECT_EQ(sum, forward.log_likelihood);
}

TEST(ForwardDecompositionTest, ImpossibleWindowPutsInfinityAtFailingStep) {
  hmm::Hmm model;
  model.transition = Matrix::from_rows({{0.5, 0.5}, {0.5, 0.5}});
  // Neither state can emit symbol 1.
  model.emission = Matrix::from_rows({{1.0, 0.0}, {1.0, 0.0}});
  model.initial = {0.5, 0.5};
  const hmm::ObservationSeq segment{0, 1, 0};
  const hmm::ForwardResult forward = hmm::forward_scaled(model, segment);
  ASSERT_TRUE(forward.impossible);
  const std::vector<double> contributions =
      hmm::per_symbol_log_contributions(forward);
  ASSERT_EQ(contributions.size(), 3u);
  EXPECT_GT(contributions[0], -kInf);
  EXPECT_EQ(contributions[1], -kInf);  // the step that killed the window
  EXPECT_EQ(contributions[2], 0.0);
  EXPECT_EQ(contributions[0] + contributions[1] + contributions[2],
            forward.log_likelihood);
}

TEST(DecisionRecordTest, RecordMatchesVerdictAndLabels) {
  const core::Detector detector = tiny_detector(-1.0);
  const hmm::ObservationSeq segment{0, 1, 0};
  hmm::ForwardResult forward;
  const core::SegmentVerdict verdict =
      detector.score_segment(segment, &forward);
  EXPECT_TRUE(verdict.flagged);  // threshold -1 is above any real window
  const obs::DecisionRecord record =
      detector.make_decision_record(segment, verdict, forward);
  EXPECT_EQ(record.log_likelihood, verdict.log_likelihood);
  EXPECT_EQ(record.threshold, -1.0);
  EXPECT_EQ(record.margin, verdict.log_likelihood - (-1.0));
  EXPECT_TRUE(record.flagged);
  EXPECT_FALSE(record.unknown_symbol);
  ASSERT_EQ(record.symbols.size(), 3u);
  EXPECT_EQ(record.symbols[0].label, "read@main");
  EXPECT_EQ(record.symbols[1].label, "write@main");
  EXPECT_EQ(record.symbols[1].position, 1u);
  // The acceptance bound: per-symbol contributions reproduce the verdict.
  EXPECT_NEAR(record.contribution_sum(), verdict.log_likelihood, 1e-9);
  EXPECT_EQ(record.contribution_sum(), verdict.log_likelihood);
}

TEST(DecisionRecordTest, UnknownSymbolAbsorbsTheInfinity) {
  const core::Detector detector = tiny_detector(-10.0);
  const hmm::ObservationSeq segment{0, 7, 1};  // 7 is out of vocabulary
  hmm::ForwardResult forward;
  const core::SegmentVerdict verdict =
      detector.score_segment(segment, &forward);
  EXPECT_TRUE(verdict.unknown_symbol);
  EXPECT_TRUE(forward.impossible);
  EXPECT_EQ(verdict.log_likelihood, -kInf);
  const obs::DecisionRecord record =
      detector.make_decision_record(segment, verdict, forward);
  ASSERT_EQ(record.symbols.size(), 3u);
  EXPECT_FALSE(record.symbols[0].unknown);
  EXPECT_TRUE(record.symbols[1].unknown);
  EXPECT_EQ(record.symbols[1].label, "<unknown>");
  EXPECT_EQ(record.symbols[1].log_prob, -kInf);
  EXPECT_EQ(record.symbols[0].log_prob, 0.0);
  EXPECT_EQ(record.contribution_sum(), -kInf);
}

TEST(MonitorDecisionTest, PeriodicSamplingFillsBoundedRing) {
  const core::Detector detector = tiny_detector(-1e9);  // nothing flags
  core::MonitorOptions options;
  options.decisions.enabled = true;
  options.decisions.sample_every = 2;
  options.decisions.ring_capacity = 2;
  core::OnlineMonitor monitor(detector, nullptr, options);
  std::vector<std::uint64_t> recorded_windows;
  for (int i = 0; i < 8; ++i) {
    const core::MonitorUpdate update =
        monitor.on_event(event(i % 2 == 0 ? "read" : "write"));
    if (update.decision != nullptr) {
      recorded_windows.push_back(update.decision->window_index);
      EXPECT_TRUE(update.decision->sampled);
      EXPECT_FALSE(update.decision->flagged);
    }
  }
  // 6 scored windows (events 3..8); every 2nd sampled: windows 2, 4, 6.
  EXPECT_EQ(recorded_windows, (std::vector<std::uint64_t>{2, 4, 6}));
  // Ring keeps only the newest `ring_capacity` records.
  ASSERT_EQ(monitor.recent_decisions().size(), 2u);
  EXPECT_EQ(monitor.recent_decisions()[0].window_index, 4u);
  EXPECT_EQ(monitor.recent_decisions()[1].window_index, 6u);
}

TEST(MonitorDecisionTest, FlaggedWindowsAlwaysRecorded) {
  const core::Detector detector = tiny_detector(kInf);  // everything flags
  core::MonitorOptions options;
  options.decisions.enabled = true;
  options.decisions.sample_every = 0;  // periodic sampling off
  options.decisions.ring_capacity = 16;
  core::OnlineMonitor monitor(detector, nullptr, options);
  std::size_t records = 0;
  for (int i = 0; i < 6; ++i) {
    const core::MonitorUpdate update = monitor.on_event(event("read"));
    if (!update.window_complete) continue;
    ASSERT_NE(update.decision, nullptr);  // always-on-flagged guarantee
    EXPECT_TRUE(update.decision->flagged);
    EXPECT_FALSE(update.decision->sampled);
    EXPECT_EQ(update.decision->alarm, update.alarm);
    ++records;
  }
  EXPECT_EQ(records, 4u);  // windows complete from event 3 on
  EXPECT_EQ(monitor.recent_decisions().size(), 4u);
}

TEST(MonitorDecisionTest, DisabledTracingLeavesNoFootprint) {
  const core::Detector detector = tiny_detector(kInf);
  core::OnlineMonitor monitor(detector, nullptr, {});
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(monitor.on_event(event("read")).decision, nullptr);
  }
  EXPECT_TRUE(monitor.recent_decisions().empty());
}

TEST(GoldenTest, DecisionJsonlIsByteStable) {
  obs::DecisionLog log(8);

  obs::DecisionRecord flagged;
  flagged.window_index = 7;
  flagged.session = "s1";
  flagged.trace_id = "t-42";
  flagged.log_likelihood = -12.5;
  flagged.threshold = -10.0;
  flagged.margin = -2.5;
  flagged.flagged = true;
  flagged.alarm = true;
  flagged.symbols.push_back({0, 0, "read@main", -3.25, 1, false});
  flagged.symbols.push_back({1, 1, "write@main", -9.25, 0, false});
  log.append(flagged);

  obs::DecisionRecord unknown;
  unknown.window_index = 8;
  unknown.session = "s1";
  unknown.log_likelihood = -kInf;
  unknown.threshold = -10.0;
  unknown.margin = -kInf;
  unknown.flagged = true;
  unknown.unknown_symbol = true;
  unknown.sampled = true;
  unknown.symbols.push_back({0, 7, "<unknown>", -kInf, 0, true});
  log.append(unknown);

  compare_golden("decision.jsonl", log.to_jsonl());
}

TEST(GoldenTest, ChromeTraceProfileIsByteStable) {
  obs::RunProfile profile;
  profile.begin("analyze");
  profile.end(0.25);
  profile.begin("fit");
  profile.begin("iteration");
  profile.end(0.5);
  profile.begin("iteration");  // merges with the previous sibling
  profile.end(0.5);
  profile.end(1.5);
  profile.finish(2.0);
  compare_golden("chrome_trace.json", obs::chrome_trace_json(profile));
}

TEST(GoldenTest, ChromeTraceSpansAreByteStable) {
  std::vector<obs::SpanRecord> spans;
  spans.push_back({"queue", "s1", "t-42", 3, 100.0, 40.5, 1});
  spans.push_back({"score", "s1", "t-42", 3, 140.5, 59.5, 1});
  spans.push_back({"reply", "s1", "t-42", 3, 90.0, 120.0, 0});
  compare_golden("chrome_spans.json", obs::chrome_trace_json(spans));
}

}  // namespace
}  // namespace cmarkov
