#include "src/core/detector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/hmm/forward_backward.hpp"
#include "src/hmm/viterbi.hpp"
#include "src/obs/run_profile.hpp"

namespace cmarkov::core {

namespace {

/// Widens the emission matrix to `new_symbols` columns, giving new symbols
/// a small floor probability (rows renormalized). Needed when training
/// traces contain observations the static analysis never produced.
void extend_emission(hmm::Hmm& model, std::size_t new_symbols,
                     double floor = 1e-6) {
  const std::size_t old_symbols = model.num_symbols();
  if (new_symbols <= old_symbols) return;
  Matrix extended(model.num_states(), new_symbols, floor);
  for (std::size_t s = 0; s < model.num_states(); ++s) {
    for (std::size_t k = 0; k < old_symbols; ++k) {
      extended(s, k) = model.emission(s, k);
    }
  }
  extended.normalize_rows();
  model.emission = std::move(extended);
}

}  // namespace

double calibrate_threshold(const hmm::Hmm& model,
                           const std::vector<hmm::ObservationSeq>& calibration,
                           double target_fp) {
  std::vector<double> scores;
  scores.reserve(calibration.size());
  for (const auto& segment : calibration) {
    scores.push_back(hmm::sequence_log_likelihood(model, segment));
  }
  std::sort(scores.begin(), scores.end());
  const auto budget = static_cast<std::size_t>(
      std::floor(target_fp * static_cast<double>(scores.size())));
  return budget >= scores.size() ? std::numeric_limits<double>::infinity()
                                 : scores[budget];
}

Detector Detector::build(const ir::ProgramModule& program,
                         DetectorConfig config) {
  Detector detector;
  detector.config_ = config;
  Rng rng(config.seed);
  StaticPipelineResult pipeline =
      run_static_pipeline(program, config.pipeline, rng);
  detector.hmm_ = std::move(pipeline.init.model);
  detector.alphabet_ = std::move(pipeline.alphabet);
  detector.build_timings_ = pipeline.timings;
  detector.state_labels_ = std::move(pipeline.init.state_labels);
  detector.threshold_ = -std::numeric_limits<double>::infinity();
  return detector;
}

Detector Detector::from_parts(DetectorConfig config, hmm::Hmm model,
                              hmm::Alphabet alphabet, double threshold,
                              bool trained) {
  model.validate();
  if (model.num_symbols() < alphabet.size()) {
    throw std::invalid_argument(
        "Detector::from_parts: emission narrower than alphabet");
  }
  Detector detector;
  detector.config_ = std::move(config);
  detector.hmm_ = std::move(model);
  detector.alphabet_ = std::move(alphabet);
  detector.threshold_ = threshold;
  detector.trained_ = trained;
  return detector;
}

hmm::ObservationSeq Detector::encode(const trace::Trace& trace) const {
  return trace::encode_trace_frozen(
      trace, config_.pipeline.filter,
      config_.pipeline.context_sensitive
          ? hmm::ObservationEncoding::kContextSensitive
          : hmm::ObservationEncoding::kContextFree,
      alphabet_, alphabet_.size());
}

hmm::TrainingReport Detector::train(
    const std::vector<trace::Trace>& normal_traces) {
  obs::RunProfile* profile = config_.training.exec.profile;

  // Extend the vocabulary with dynamically observed symbols first.
  const hmm::ObservationEncoding encoding =
      config_.pipeline.context_sensitive
          ? hmm::ObservationEncoding::kContextSensitive
          : hmm::ObservationEncoding::kContextFree;
  trace::SegmentSet unique_segments(config_.segments);
  std::vector<hmm::ObservationSeq> segments;
  std::vector<hmm::ObservationSeq> holdout;
  std::vector<hmm::ObservationSeq> train_set;
  {
    const obs::ScopedTimer span(profile, "segment");
    for (const auto& trace : normal_traces) {
      unique_segments.add_trace(trace::encode_trace(
          trace, config_.pipeline.filter, encoding, alphabet_));
    }
    extend_emission(hmm_, alphabet_.size());

    segments = unique_segments.to_vector();
    if (segments.empty()) {
      throw std::invalid_argument(
          "Detector::train: traces yield no segments");
    }
    Rng rng(config_.seed ^ 0x7e57);
    rng.shuffle(segments);

    const auto holdout_count = static_cast<std::size_t>(
        config_.holdout_fraction * static_cast<double>(segments.size()));
    holdout.assign(
        segments.begin(),
        segments.begin() + static_cast<std::ptrdiff_t>(holdout_count));
    train_set.assign(
        segments.begin() + static_cast<std::ptrdiff_t>(holdout_count),
        segments.end());
    if (train_set.empty()) train_set = segments;
  }

  hmm::Trainer trainer(hmm_, config_.training);
  const hmm::TrainingReport report = trainer.fit(train_set, holdout);
  hmm_ = trainer.model();
  trainer_state_ = config_.keep_trainer_state
                       ? std::make_shared<const hmm::TrainerState>(
                             trainer.state())
                       : nullptr;

  // Threshold calibration on the held-out normal segments (falls back to
  // the training set when the holdout is empty).
  const obs::ScopedTimer calibrate_span(profile, "calibrate");
  const auto& calibration = holdout.empty() ? train_set : holdout;
  threshold_ = calibrate_threshold(hmm_, calibration, config_.target_fp);
  trained_ = true;
  return report;
}

std::vector<hmm::ObservationSeq> Detector::encode_trace_segments(
    const trace::Trace& trace) const {
  trace::SegmentSet unique_segments(config_.segments);
  unique_segments.add_trace(encode(trace));
  return unique_segments.to_vector();
}

Detector Detector::rebuilt_with(
    hmm::Hmm model,
    const std::vector<hmm::ObservationSeq>& calibration) const {
  model.validate();
  if (model.num_symbols() < alphabet_.size()) {
    throw std::invalid_argument(
        "Detector::rebuilt_with: emission narrower than alphabet");
  }
  Detector refreshed;
  refreshed.config_ = config_;
  refreshed.hmm_ = std::move(model);
  refreshed.alphabet_ = alphabet_;
  refreshed.state_labels_ = state_labels_;
  refreshed.threshold_ =
      calibrate_threshold(refreshed.hmm_, calibration, config_.target_fp);
  refreshed.trained_ = true;
  return refreshed;
}

SegmentVerdict Detector::score_segment(
    const hmm::ObservationSeq& segment) const {
  return score_segment(segment, nullptr);
}

SegmentVerdict Detector::score_segment(const hmm::ObservationSeq& segment,
                                       hmm::ForwardResult* forward) const {
  SegmentVerdict verdict;
  for (std::size_t id : segment) {
    if (id >= hmm_.num_symbols()) {
      verdict.unknown_symbol = true;
      verdict.log_likelihood = -std::numeric_limits<double>::infinity();
      verdict.flagged = true;
      if (forward != nullptr) {
        // The forward recursion cannot consume out-of-vocabulary ids;
        // report an empty impossible pass instead of running it.
        *forward = hmm::ForwardResult{};
        forward->impossible = true;
        forward->log_likelihood = verdict.log_likelihood;
      }
      return verdict;
    }
  }
  hmm::ForwardResult local = hmm::forward_scaled(hmm_, segment);
  verdict.log_likelihood = local.log_likelihood;
  verdict.flagged = verdict.log_likelihood < threshold_;
  if (forward != nullptr) *forward = std::move(local);
  return verdict;
}

obs::DecisionRecord Detector::make_decision_record(
    const hmm::ObservationSeq& segment, const SegmentVerdict& verdict,
    const hmm::ForwardResult& forward) const {
  obs::DecisionRecord record;
  record.log_likelihood = verdict.log_likelihood;
  record.threshold = threshold_;
  record.margin = verdict.log_likelihood - threshold_;
  record.flagged = verdict.flagged;
  record.unknown_symbol = verdict.unknown_symbol;

  // Per-symbol contributions and argmax states are computed inline (same
  // semantics as hmm::per_symbol_log_contributions /
  // per_symbol_argmax_states, asserted by decision_trace_test) rather than
  // through the helpers: this runs per sampled window on the scoring hot
  // path, and the helpers' temporary vectors are measurable there.
  const std::size_t num_states = forward.alpha.cols();
  bool dead = false;  // scoring stopped at an earlier impossible step
  record.symbols.reserve(segment.size());
  for (std::size_t t = 0; t < segment.size(); ++t) {
    obs::SymbolContribution entry;
    entry.position = t;
    entry.symbol = segment[t];
    entry.label = segment[t] < alphabet_.size()
                      ? std::string_view(alphabet_.name(segment[t]))
                      : std::string_view("<unknown>");
    entry.unknown = segment[t] >= hmm_.num_symbols();
    if (verdict.unknown_symbol) {
      // No forward pass ran: the unknown symbols absorb the -infinity
      // (their contributions still sum to the -infinity log-likelihood).
      entry.log_prob = entry.unknown
                           ? -std::numeric_limits<double>::infinity()
                           : 0.0;
    } else {
      if (t < forward.scales.size() && !dead) {
        const double c = forward.scales[t];
        if (c <= 0.0) {
          entry.log_prob = -std::numeric_limits<double>::infinity();
          dead = true;
        } else {
          entry.log_prob = std::log(c);
        }
      }
      if (t < forward.alpha.rows()) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < num_states; ++i) {
          if (forward.alpha(t, i) > forward.alpha(t, best)) best = i;
        }
        entry.state = best;
      }
    }
    record.symbols.push_back(entry);
  }
  return record;
}

std::vector<std::string> Detector::explain_segment(
    const hmm::ObservationSeq& segment) const {
  for (std::size_t id : segment) {
    if (id >= hmm_.num_symbols()) return {};
  }
  const hmm::ViterbiResult decoded = hmm::viterbi_decode(hmm_, segment);
  std::vector<std::string> out;
  out.reserve(decoded.path.size());
  for (std::size_t state : decoded.path) {
    out.push_back(state < state_labels_.size()
                      ? state_labels_[state]
                      : "state" + std::to_string(state));
  }
  return out;
}

TraceVerdict Detector::classify(const trace::Trace& trace) const {
  if (!trained_) {
    throw std::logic_error("Detector::classify: train the detector first");
  }
  TraceVerdict verdict;
  verdict.min_log_likelihood = std::numeric_limits<double>::infinity();
  const auto encoded = encode(trace);
  for (const auto& segment :
       trace::segment_sequence(encoded, config_.segments)) {
    SegmentVerdict sv = score_segment(segment);
    verdict.total_segments += 1;
    if (sv.flagged) verdict.flagged_segments += 1;
    verdict.min_log_likelihood =
        std::min(verdict.min_log_likelihood, sv.log_likelihood);
    verdict.segments.push_back(sv);
  }
  if (verdict.total_segments == 0) {
    verdict.min_log_likelihood = 0.0;
  }
  verdict.anomalous = verdict.flagged_segments > 0;
  return verdict;
}

double Detector::score(const trace::Trace& trace) const {
  double min_ll = std::numeric_limits<double>::infinity();
  const auto encoded = encode(trace);
  bool any = false;
  for (const auto& segment :
       trace::segment_sequence(encoded, config_.segments)) {
    any = true;
    min_ll = std::min(min_ll, score_segment(segment).log_likelihood);
  }
  return any ? min_ll : 0.0;
}

}  // namespace cmarkov::core
