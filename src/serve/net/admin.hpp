// cmarkovd's HTTP/1.1 admin plane (docs/OBSERVABILITY.md): out-of-band
// operational introspection on a separate port, hosted by the existing
// epoll front-end (EpollServer accepts admin connections on
// NetOptions::admin_port and binds them to an AdminConn instead of
// sniffing CMKB/text).
//
// Endpoints (GET only):
//   /metrics  Prometheus text exposition of the full registry
//   /healthz  liveness + overload-governor rung + drift arming state
//   /varz     the TimeSeriesCollector's rings with derived rates/quantiles
//   /statusz  per-shard SessionManager breakdown + per-event-loop counters
//
// None of these drain or block admission: every number comes from relaxed
// atomics, the collector's rings, or the manager's try-lock shard sweep —
// a scrape can run at full tilt while 1M sessions score (admin_test
// hammers exactly that). The protocol support is deliberately minimal:
// GET, keep-alive/close, bounded headers, no bodies — it serves curl,
// Prometheus, and `cmarkov top`, not browsers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/serve/session_manager.hpp"

namespace cmarkov::obs {
class TimeSeriesCollector;
}

namespace cmarkov::serve::net {

/// Per-event-loop counters for /statusz (EpollServer::loop_status()).
struct LoopStatus {
  std::size_t loop = 0;
  double connections_open = 0.0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Protocol units handled on this loop (text lines + binary frames).
  std::uint64_t units = 0;
};

struct HttpRequest {
  std::string method;
  std::string target;  // path only; any ?query is stripped before dispatch
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// Renders admin endpoints. One handler serves every admin connection
/// (handle() is thread-safe across event loops); the optional sources are
/// wired before the server starts and must outlive the handler.
class AdminHandler {
 public:
  /// Registers the cmarkov_admin_* instruments on manager.instruments().
  explicit AdminHandler(SessionManager& manager);

  /// /varz source (null: /varz answers 503). Set before traffic.
  void set_collector(const obs::TimeSeriesCollector* collector);
  /// /healthz and /statusz drift block (null: drift reported unarmed).
  void set_drift_monitor(const DriftMonitor* drift);
  /// /statusz per-loop section (unset: "loops":[]). Set before traffic.
  void set_loop_status_fn(std::function<std::vector<LoopStatus>()> fn);

  HttpResponse handle(const HttpRequest& request);

 private:
  std::string healthz_json();
  std::string statusz_json();

  SessionManager& manager_;
  const obs::TimeSeriesCollector* collector_ = nullptr;
  const DriftMonitor* drift_ = nullptr;
  std::function<std::vector<LoopStatus>()> loop_status_;
  obs::Counter* requests_total_;
  obs::Counter* errors_total_;
  obs::Histogram* request_micros_;
};

/// Per-connection HTTP/1.1 request parser/encoder. The epoll loop feeds
/// raw bytes in; complete requests are dispatched to the shared handler
/// and encoded responses appended to `out` (pipelining works naturally).
class AdminConn {
 public:
  explicit AdminConn(AdminHandler& handler) : handler_(handler) {}

  /// Consumes every complete request currently in `inbuf`. Returns false
  /// when the connection must close once `out` is flushed (Connection:
  /// close, HTTP/1.0 default, or a malformed request).
  bool consume(std::string& inbuf, std::string& out);

  std::uint64_t requests_handled() const { return requests_; }

 private:
  AdminHandler& handler_;
  std::uint64_t requests_ = 0;
};

/// Blocking one-shot HTTP GET against the admin plane (the client side of
/// `cmarkov top`, the bench poller, and tests). Throws std::runtime_error
/// on connect/send/receive failure or malformed response.
struct HttpGetResult {
  int status = 0;
  std::string body;
};
HttpGetResult admin_http_get(const std::string& host, std::uint16_t port,
                             const std::string& path,
                             int timeout_ms = 5000);

}  // namespace cmarkov::serve::net
