// Property-based tests: invariants checked over randomized inputs and
// parameterized sweeps (TEST_P), per the evaluation-protocol invariants the
// paper's pipeline relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/aggregation.hpp"
#include "src/cfg/cfg_builder.hpp"
#include "src/hmm/trainer.hpp"
#include "src/hmm/forward_backward.hpp"
#include "src/hmm/random_init.hpp"
#include "src/hmm/viterbi.hpp"
#include "src/ir/lexer.hpp"
#include "src/ir/module.hpp"
#include "src/ir/parser.hpp"
#include "src/ir/sema.hpp"
#include "src/trace/interpreter.hpp"
#include "src/trace/symbolizer.hpp"
#include "src/util/rng.hpp"

namespace cmarkov {
namespace {

/// Generates a random but well-formed MiniC program: `fn_count` leaf/inner
/// functions plus main, with input-driven branching and loops.
std::string random_program(Rng& rng, std::size_t fn_count) {
  std::string source;
  std::vector<std::string> defined;
  for (std::size_t f = 0; f < fn_count; ++f) {
    const std::string name = "f" + std::to_string(f);
    source += "fn " + name + "() {\n";
    const std::size_t stmts = 1 + rng.index(4);
    for (std::size_t s = 0; s < stmts; ++s) {
      switch (rng.index(5)) {
        case 0:
          source += "  sys(\"s" + std::to_string(rng.index(6)) + "\");\n";
          break;
        case 1:
          source += "  lib(\"l" + std::to_string(rng.index(6)) + "\");\n";
          break;
        case 2:
          if (!defined.empty()) {
            source += "  " + rng.pick(defined) + "();\n";
          } else {
            source += "  sys(\"s0\");\n";
          }
          break;
        case 3:
          source += "  if (input() % 2 == 0) { sys(\"s" +
                    std::to_string(rng.index(6)) + "\"); }\n";
          break;
        default:
          source +=
              "  var n" + std::to_string(s) + " = input() % 4;\n  while (n" +
              std::to_string(s) + " > 0) { lib(\"l" +
              std::to_string(rng.index(6)) + "\"); n" + std::to_string(s) +
              " = n" + std::to_string(s) + " - 1; }\n";
          break;
      }
    }
    source += "}\n";
    defined.push_back(name);
  }
  source += "fn main() {\n";
  for (const auto& name : defined) source += "  " + name + "();\n";
  source += "}\n";
  return source;
}

class RandomProgramProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramProperty, EntryRowOfAggregatedMatrixIsStochastic) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const std::string source = random_program(rng, 2 + rng.index(5));
  const auto module = cfg::build_module_cfg(
      ir::ProgramModule::from_source("rand", source));
  const auto graph = cfg::CallGraph::build(module);
  const analysis::UniformBranchHeuristic heuristic;
  const auto aggregated =
      analysis::aggregate_program(module, graph, heuristic);
  const auto& m = aggregated.program_matrix;

  // Property: probability mass leaving ENTRY is exactly 1 (every execution
  // has a first observable event or exits silently).
  const std::size_t entry =
      m.index_of(analysis::CallSymbol::entry("main"));
  EXPECT_NEAR(m.row_sum(entry), 1.0, 1e-9) << source;
  // Property: no cell is negative and no internal symbols remain.
  for (std::size_t r = 0; r < m.size(); ++r) {
    EXPECT_NE(m.symbol(r).kind, analysis::CallSymbol::Kind::kInternal);
    for (const auto& [c, p] : m.row(r)) {
      (void)c;
      EXPECT_GE(p, -1e-12);
    }
  }
}

TEST_P(RandomProgramProperty, InterpreterTracesStayInsideStaticAlphabet) {
  // Property: every (call, caller) pair observed dynamically must exist in
  // the context-sensitive static matrix (static analysis over-approximates
  // dynamic behaviour up to loops, which add no new symbols).
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729);
  const std::string source = random_program(rng, 2 + rng.index(4));
  const auto program = ir::ProgramModule::from_source("rand", source);
  const auto module = cfg::build_module_cfg(program);
  const auto graph = cfg::CallGraph::build(module);
  const analysis::UniformBranchHeuristic heuristic;
  const auto aggregated =
      analysis::aggregate_program(module, graph, heuristic);

  const trace::Interpreter interpreter(module);
  const trace::Symbolizer symbolizer(module);
  for (int run = 0; run < 5; ++run) {
    std::vector<std::int64_t> inputs;
    for (int i = 0; i < 32; ++i) inputs.push_back(rng.uniform_int(0, 99));
    trace::SeededEnvironment environment(rng.engine()());
    auto result = interpreter.run(inputs, environment);
    symbolizer.symbolize(result.trace);
    for (const auto& event : result.trace.events) {
      const auto symbol = analysis::CallSymbol::external(
          event.kind, event.name, event.caller);
      EXPECT_TRUE(aggregated.program_matrix.contains(symbol))
          << symbol.to_string() << "\n"
          << source;
    }
  }
}

TEST_P(RandomProgramProperty, InterpreterIsDeterministic) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863);
  const std::string source = random_program(rng, 3);
  const auto module = cfg::build_module_cfg(
      ir::ProgramModule::from_source("rand", source));
  const trace::Interpreter interpreter(module);
  std::vector<std::int64_t> inputs;
  for (int i = 0; i < 24; ++i) inputs.push_back(rng.uniform_int(0, 99));
  const std::uint64_t env_seed = rng.engine()();

  trace::SeededEnvironment env_a(env_seed);
  trace::SeededEnvironment env_b(env_seed);
  const auto a = interpreter.run(inputs, env_a);
  const auto b = interpreter.run(inputs, env_b);
  EXPECT_EQ(a.exit_value, b.exit_value);
  ASSERT_EQ(a.trace.events.size(), b.trace.events.size());
  for (std::size_t i = 0; i < a.trace.events.size(); ++i) {
    EXPECT_EQ(a.trace.events[i].name, b.trace.events[i].name);
    EXPECT_EQ(a.trace.events[i].site_address, b.trace.events[i].site_address);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramProperty,
                         ::testing::Range(0, 12));

class RandomHmmProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomHmmProperty, ForwardProbabilitiesSumToOneOverAllSequences) {
  // Property: sum of P(obs) over every possible sequence of length L is 1.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  const std::size_t states = 2 + rng.index(3);
  const std::size_t symbols = 2 + rng.index(2);
  const hmm::Hmm model =
      hmm::randomly_initialized_hmm(states, symbols, rng);

  const std::size_t length = 3;
  std::vector<std::size_t> seq(length, 0);
  double total = 0.0;
  while (true) {
    total += hmm::sequence_probability(model, seq);
    std::size_t pos = 0;
    while (pos < length && ++seq[pos] == symbols) {
      seq[pos] = 0;
      ++pos;
    }
    if (pos == length) break;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(RandomHmmProperty, BaumWelchNeverDecreasesDataLikelihood) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 13);
  const std::size_t states = 2 + rng.index(2);
  const std::size_t symbols = 2 + rng.index(3);
  hmm::Hmm model = hmm::randomly_initialized_hmm(states, symbols, rng);

  std::vector<hmm::ObservationSeq> data;
  for (int s = 0; s < 12; ++s) {
    hmm::ObservationSeq seq;
    for (int t = 0; t < 10; ++t) seq.push_back(rng.index(symbols));
    data.push_back(std::move(seq));
  }
  hmm::TrainingOptions options;
  options.max_iterations = 6;
  options.min_improvement = -1.0;
  options.patience = 100;
  hmm::Trainer trainer(model, options);
  const auto report = trainer.fit(data);
  for (std::size_t i = 1; i < report.train_log_likelihood.size(); ++i) {
    EXPECT_GE(report.train_log_likelihood[i],
              report.train_log_likelihood[i - 1] - 1e-6);
  }
  EXPECT_NO_THROW(trainer.model().validate(1e-6));
}

TEST_P(RandomHmmProperty, ViterbiNeverBeatsForward) {
  // Property: the best single path's probability cannot exceed the total
  // probability over all paths.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 3);
  const hmm::Hmm model = hmm::randomly_initialized_hmm(3, 3, rng);
  for (int trial = 0; trial < 5; ++trial) {
    hmm::ObservationSeq seq;
    for (int t = 0; t < 8; ++t) seq.push_back(rng.index(3));
    const double forward = hmm::sequence_log_likelihood(model, seq);
    const double viterbi = hmm::viterbi_decode(model, seq).log_probability;
    EXPECT_LE(viterbi, forward + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHmmProperty, ::testing::Range(0, 10));

class FuzzProperty : public ::testing::TestWithParam<int> {};

TEST_P(FuzzProperty, ParserNeverCrashesOnMutatedSource) {
  // Property: arbitrary mutations of valid source either parse or raise
  // SyntaxError/SemaError — never crash or hang.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  std::string source = random_program(rng, 3);
  const std::size_t mutations = 1 + rng.index(8);
  static const char kNoise[] = "(){};=+-*/%<>!&|\"abc123 \n";
  for (std::size_t m = 0; m < mutations; ++m) {
    const std::size_t pos = rng.index(source.size());
    switch (rng.index(3)) {
      case 0:  // replace
        source[pos] = kNoise[rng.index(sizeof(kNoise) - 2)];
        break;
      case 1:  // delete
        source.erase(pos, 1 + rng.index(4));
        break;
      default:  // insert
        source.insert(pos, 1, kNoise[rng.index(sizeof(kNoise) - 2)]);
        break;
    }
  }
  try {
    const auto module = ir::ProgramModule::from_source("fuzz", source);
    // Still valid after mutation: the whole pipeline must cope.
    const auto cfg = cfg::build_module_cfg(module);
    EXPECT_GT(cfg.functions.size(), 0u);
  } catch (const ir::SyntaxError&) {
  } catch (const ir::SemaError&) {
  }
}

TEST_P(FuzzProperty, RandomSourceRoundTripsThroughPrettyPrinter) {
  // Property: parse -> to_source -> parse is a fixed point.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 40503 + 11);
  const std::string source = random_program(rng, 2 + rng.index(4));
  const ir::Program first = ir::parse_program(source);
  const std::string printed = ir::to_source(first);
  const ir::Program second = ir::parse_program(printed);
  EXPECT_EQ(ir::to_source(second), printed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzProperty, ::testing::Range(0, 15));

}  // namespace
}  // namespace cmarkov
