// Figure 2: classification accuracy (FP vs FN) of the four models on the
// six utility programs, library-call traces. Expected shape: CMarkov
// lowest FN, then STILO/Regular-context, Regular-basic worst; context
// sensitivity matters most on libcalls.
#include "bench/figure_common.hpp"

int main(int argc, char** argv) {
  cmarkov::benchfig::run_figure(
      "Figure 2: utility programs, libcall accuracy",
      cmarkov::workload::utility_suite_names(),
      cmarkov::analysis::CallFilter::kLibcalls, argc, argv);
  return 0;
}
