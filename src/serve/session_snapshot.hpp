// Serialized session state for idle-session eviction and daemon restarts.
//
// A SessionSnapshot captures everything an evicted session needs to resume
// exactly where it stopped: the monitor's scoring state (window ids,
// hysteresis, cumulative stats — all exact integers, so the round trip is
// bit-identical) plus the per-session queue counters and the identity of
// the model the window ids were encoded against. The SnapshotStore keeps
// snapshots in memory and, when given a directory, mirrors each one to a
// "<id>.session" file in the `cmarkov-session v1` text format — sessions
// then survive daemon restarts (load_directory at boot).
//
// Disk writes are crash-safe (ISSUE 8): each file is written to a ".tmp"
// sibling, fsync'd, sealed with a CRC-32 footer line, and atomically
// renamed into place (the parent directory is fsync'd after the rename).
// A crash therefore leaves either the old file, the new file, or an
// orphaned tmp — never a half-written "<id>.session". At boot,
// load_directory verifies every file's CRC and QUARANTINES anything torn,
// truncated, or bit-rotted into "<dir>/quarantine/" (visible for forensics,
// counted on cmarkov_snapshot_quarantined_total) instead of silently
// skipping it; healthy siblings always load.
//
// A failed disk write no longer degrades that snapshot to memory-only
// forever: the id is marked dirty and re-attempted with capped exponential
// backoff on subsequent eviction passes (every put() retries what is due;
// retry_pending_writes() forces a pass). Failures and retries ride on the
// cmarkov_snapshot_* counters once bind_instruments() is called.
//
// Model identity is two numbers: the in-process registry `model_version`
// (cheap staleness check for evict/restore within one daemon) and the
// content `model_fingerprint` (stable across restarts). A restore whose
// fingerprint no longer matches the registry keeps the counters but starts
// a fresh window — the old window ids index a dead alphabet.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "src/core/online_monitor.hpp"
#include "src/obs/metrics_registry.hpp"

namespace cmarkov::serve {

struct SessionSnapshot {
  std::string id;
  std::string model;
  std::uint64_t model_version = 0;
  std::uint64_t model_fingerprint = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t processed = 0;
  std::uint64_t dropped = 0;
  std::uint64_t rejected = 0;
  /// Queued events discarded when this session was evicted (satellite
  /// accounting: eviction losses are not backpressure losses).
  std::uint64_t evicted_dropped = 0;
  /// Hysteresis configuration the session was opened with, so a restore
  /// alarms exactly like the uninterrupted session would have.
  std::uint64_t windows_to_alarm = 1;
  std::uint64_t cooldown_events = 0;
  core::MonitorSnapshot monitor;
};

/// Renders the `cmarkov-session v1` text form (exact integer fields; the
/// id/model strings are length-prefixed, so any bytes the wire admits —
/// spaces and newlines included — survive: decode(encode(s)) == s). The
/// on-disk CRC footer is the store's concern, not the codec's.
std::string encode_session_snapshot(const SessionSnapshot& snapshot);

/// Parses the text form. Throws std::runtime_error naming the offending
/// key or value on malformed input (model_io error style).
SessionSnapshot decode_session_snapshot(const std::string& text);

/// Thread-safe id-keyed snapshot store. With an empty directory snapshots
/// live in memory only (evict/restore within one daemon); with a directory
/// every put/erase is mirrored to disk so sessions survive restarts.
class SnapshotStore {
 public:
  /// Creates `dir` (recursively) when non-empty. Throws std::runtime_error
  /// when the directory cannot be created.
  explicit SnapshotStore(std::string dir = "");

  /// Registers the cmarkov_snapshot_* counters (writes, write_failures,
  /// write_retries, quarantined) on `metrics`. Optional; without it the
  /// store still tracks quarantined_count()/dirty_count() locally.
  void bind_instruments(obs::MetricsRegistry& metrics);

  /// Stores (and, with a directory, mirrors to disk) one snapshot. A disk
  /// write failure is logged and counted; the snapshot stays in memory and
  /// its persistence is re-attempted with capped exponential backoff on
  /// later puts (the eviction pass) — eviction never throws I/O errors
  /// into the serving path.
  void put(SessionSnapshot snapshot);

  /// Removes and returns the snapshot, or nullopt when absent.
  std::optional<SessionSnapshot> take(const std::string& id);

  /// A copy of the snapshot without consuming it (stats of an evicted
  /// session), or nullopt when absent.
  std::optional<SessionSnapshot> peek(const std::string& id) const;

  bool contains(const std::string& id) const;
  std::size_t size() const;

  /// Loads every "*.session" file of the store directory into memory
  /// (daemon boot). Files that fail CRC or decode are moved into
  /// "<dir>/quarantine/" and counted — one corrupt file must not abort
  /// startup, and must not disappear silently either. Orphaned ".tmp"
  /// files (crash mid-write) are removed. Returns the number of snapshots
  /// loaded. No-op without a dir.
  std::size_t load_directory();

  /// Re-attempts persisting every dirty snapshot whose backoff window has
  /// passed; returns how many flushed clean. Called implicitly by put().
  std::size_t retry_pending_writes();

  /// Snapshots currently degraded to memory-only awaiting a write retry.
  std::size_t dirty_count() const;

  /// Files quarantined by load_directory over this store's lifetime.
  std::size_t quarantined_count() const;

  /// Test hook: overrides the retry backoff (base doubles per attempt up
  /// to cap). Defaults: 100 ms base, 10 s cap.
  void set_retry_backoff(std::uint64_t base_micros, std::uint64_t cap_micros);

  const std::string& directory() const { return dir_; }

 private:
  struct RetryState {
    std::uint64_t attempts = 0;
    std::uint64_t next_retry_micros = 0;
  };

  std::string file_path(const std::string& id) const;
  /// Writes one snapshot file crash-safely (tmp + fsync + CRC footer +
  /// rename + dir fsync). Caller holds io_mu_. False on any I/O failure
  /// (nothing half-written is left at the final path).
  bool write_snapshot_file(const std::string& id, const std::string& encoded);
  /// Flushes due dirty entries. Caller holds io_mu_.
  std::size_t flush_dirty_locked(std::uint64_t now_micros);
  void quarantine_file(const std::string& path, const std::string& reason);
  std::uint64_t backoff_micros(std::uint64_t attempts) const;
  static std::uint64_t now_micros();

  /// Guards snapshots_ (memory map) only — stats readers never queue
  /// behind file I/O.
  mutable std::mutex mu_;
  /// Serializes disk I/O and the dirty-retry bookkeeping. Lock order:
  /// io_mu_ before mu_ (take() nests them; put() takes them in sequence).
  mutable std::mutex io_mu_;
  std::string dir_;
  std::map<std::string, SessionSnapshot> snapshots_;
  /// Ids whose last disk write failed, keyed to their backoff state.
  std::map<std::string, RetryState> dirty_;
  std::uint64_t retry_base_micros_ = 100'000;
  std::uint64_t retry_cap_micros_ = 10'000'000;
  std::size_t quarantined_ = 0;

  obs::Counter* writes_total_ = nullptr;
  obs::Counter* write_failures_total_ = nullptr;
  obs::Counter* write_retries_total_ = nullptr;
  obs::Counter* quarantined_total_ = nullptr;
};

}  // namespace cmarkov::serve
