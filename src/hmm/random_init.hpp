// Random HMM initialization — the construction of the paper's baselines
// (Regular-basic and Regular-context): hidden-state count equals the number
// of distinct observed calls, parameters drawn randomly and row-normalized.
#pragma once

#include "src/hmm/hmm.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::hmm {

struct RandomInitOptions {
  /// Rows are drawn as uniform(min_weight, 1) then normalized; a positive
  /// floor keeps every parameter strictly positive.
  double min_weight = 0.05;
};

/// A random valid HMM with `num_states` states over `num_symbols` symbols.
Hmm randomly_initialized_hmm(std::size_t num_states, std::size_t num_symbols,
                             Rng& rng, const RandomInitOptions& options = {});

}  // namespace cmarkov::hmm
