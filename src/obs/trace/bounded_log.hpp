// BoundedLog<T> — the lock-free bounded event sink shared by the decision
// JSONL log and the span Tracer (ISSUE 5). Writers claim a slot with one
// relaxed fetch_add and publish it with one release store; there is no
// mutex anywhere on the append path, so serving workers never contend.
//
// The log is a flight recorder, not a ring: once `capacity` records have
// been claimed, further appends are DROPPED and counted (drop accounting is
// part of the contract — loss is observable, never silent). Snapshot order
// is claim order, which makes output deterministic whenever production is
// deterministic (single producer, or the manual-pump test harness).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace cmarkov::obs {

template <typename T>
class BoundedLog {
 public:
  explicit BoundedLog(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ > 0) slots_ = std::make_unique<Slot[]>(capacity_);
  }
  BoundedLog(const BoundedLog&) = delete;
  BoundedLog& operator=(const BoundedLog&) = delete;

  /// Appends `value` if a slot is free; returns false (and counts a drop)
  /// once the log is full. Wait-free: one fetch_add + one release store.
  bool append(T value) {
    const std::uint64_t index =
        next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Slot& slot = slots_[index];
    slot.value = std::move(value);
    slot.ready.store(true, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return capacity_; }

  /// True once every slot has been claimed. Monotonic (slots are never
  /// reclaimed), so callers may use it as a fast path to skip building a
  /// record that append() would only drop — provided they still call
  /// drop() to keep the accounting complete.
  bool full() const {
    return next_.load(std::memory_order_relaxed) >= capacity_;
  }

  /// Counts `n` drops without claiming slots: the caller observed full()
  /// and skipped constructing the record(s).
  void drop(std::uint64_t n = 1) {
    dropped_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Records appended successfully so far (published or being published).
  std::uint64_t appended() const {
    const std::uint64_t claimed = next_.load(std::memory_order_relaxed);
    return claimed < capacity_ ? claimed : capacity_;
  }

  /// Appends refused because the log was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Copies every published record in claim order. Slots claimed but not
  /// yet published by a concurrent writer are skipped (quiesced producers
  /// => complete snapshot).
  std::vector<T> snapshot() const {
    std::vector<T> out;
    const std::uint64_t limit = appended();
    out.reserve(limit);
    for (std::uint64_t i = 0; i < limit; ++i) {
      if (slots_[i].ready.load(std::memory_order_acquire)) {
        out.push_back(slots_[i].value);
      }
    }
    return out;
  }

 private:
  struct Slot {
    std::atomic<bool> ready{false};
    T value{};
  };

  const std::size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace cmarkov::obs
