// Viterbi decoding: the most likely hidden-state path for an observation
// sequence, in log space. Used to attribute anomalous segments to states
// (which calls/contexts the model believes were executing).
#pragma once

#include <span>
#include <vector>

#include "src/hmm/hmm.hpp"

namespace cmarkov::hmm {

struct ViterbiResult {
  /// Most likely state sequence (empty for an empty observation sequence).
  std::vector<std::size_t> path;
  /// log P(path, observations | model); -infinity when impossible.
  double log_probability = 0.0;
};

ViterbiResult viterbi_decode(const Hmm& model,
                             std::span<const std::size_t> observations);

}  // namespace cmarkov::hmm
