#include "src/serve/net/epoll_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "src/serve/net/binary_session.hpp"
#include "src/serve/net/frame.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/failpoint.hpp"
#include "src/util/logging.hpp"

namespace cmarkov::serve::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("EpollServer: " + what + ": " +
                           std::strerror(errno));
}

void set_nonblocking_checks(int fd) {
  // Sockets are created with SOCK_NONBLOCK; this exists for accepted fds
  // on platforms without accept4 — not our case, but cheap to keep exact.
  (void)fd;
}

int make_eventfd() {
  const int fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fd < 0) throw_errno("eventfd");
  return fd;
}

void ring_eventfd(int fd) {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the reader; ignore short writes.
  [[maybe_unused]] const ssize_t n = write(fd, &one, sizeof(one));
}

void drain_eventfd(int fd) {
  std::uint64_t value = 0;
  [[maybe_unused]] const ssize_t n = read(fd, &value, sizeof(value));
}

}  // namespace

/// Per-connection state. Owned by exactly one event loop; never locked.
struct EpollServer::Conn {
  explicit Conn(int fd) : fd(fd) {}

  int fd;
  enum class Mode { kUnknown, kText, kBinary, kHttp } mode = Mode::kUnknown;
  /// Unknown mode: the sniff prefix. Text mode: the partial-line buffer.
  /// Http mode: the partial-request buffer.
  std::string inbuf;
  FrameParser parser;
  std::unique_ptr<ProtocolSession> text;
  std::unique_ptr<BinarySession> binary;
  /// Bound at adoption for connections accepted on the admin listener
  /// (mode kHttp from the first byte — no sniffing).
  std::unique_ptr<AdminConn> http;
  std::string outbuf;
  std::size_t outpos = 0;
  bool want_write = false;   // EPOLLOUT currently armed
  bool want_close = false;   // close once outbuf is flushed
  bool read_paused = false;  // input on hold until the backlog drains
  /// First full protocol unit (text line / binary frame) handled — the
  /// handshake reaper skips the connection from then on.
  bool handshake_done = false;
  /// Service-clock stamp at adoption (handshake deadline base).
  double accepted_micros = 0.0;

  /// Unflushed reply bytes parked on this connection.
  std::size_t backlog() const { return outbuf.size() - outpos; }
};

struct EpollServer::Loop {
  std::size_t index = 0;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::mutex pending_mu;
  /// Accepted fds awaiting adoption; the flag marks admin-listener fds.
  std::vector<std::pair<int, bool>> pending;
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
  /// Next handshake-reaper sweep (service clock); rate-limits the scan.
  double next_sweep_micros = 0.0;
};

EpollServer::EpollServer(SessionManager& manager, NetOptions options)
    : manager_(manager), options_(std::move(options)) {
  if (options_.num_loops == 0) {
    throw std::invalid_argument("EpollServer: num_loops must be > 0");
  }
  if (options_.outbuf_high_water == 0) {
    throw std::invalid_argument("EpollServer: outbuf_high_water must be > 0");
  }
  obs::MetricsRegistry& metrics = manager_.instruments();
  connections_total_ = &metrics.counter("cmarkov_net_connections_total");
  frames_total_ = &metrics.counter("cmarkov_net_frames_total");
  frame_errors_total_ = &metrics.counter("cmarkov_net_frame_errors_total");
  text_lines_total_ = &metrics.counter("cmarkov_net_text_lines_total");
  bytes_read_total_ = &metrics.counter("cmarkov_net_bytes_read_total");
  bytes_written_total_ = &metrics.counter("cmarkov_net_bytes_written_total");
  handshake_timeouts_total_ =
      &metrics.counter("cmarkov_net_handshake_timeouts_total");
  connections_open_ = &metrics.gauge("cmarkov_net_connections_open");
  loop_instruments_.reserve(options_.num_loops);
  for (std::size_t i = 0; i < options_.num_loops; ++i) {
    LoopInstruments li;
    li.bytes_read = &metrics.counter("cmarkov_net_loop_bytes_read_total_w" +
                                     std::to_string(i));
    li.bytes_written = &metrics.counter(
        "cmarkov_net_loop_bytes_written_total_w" + std::to_string(i));
    li.units =
        &metrics.counter("cmarkov_net_loop_units_total_w" + std::to_string(i));
    li.connections_open = &metrics.gauge(
        "cmarkov_net_loop_connections_open_w" + std::to_string(i));
    loop_instruments_.push_back(li);
  }
}

EpollServer::~EpollServer() { stop(); }

int EpollServer::open_listener(std::uint16_t port, std::uint16_t& bound_port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  const int enable = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    throw std::runtime_error("EpollServer: bad bind address '" +
                             options_.bind_address + "'");
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    throw_errno("bind " + options_.bind_address + ":" + std::to_string(port));
  }
  if (listen(fd, SOMAXCONN) < 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    throw_errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const int saved = errno;
    close(fd);
    errno = saved;
    throw_errno("getsockname");
  }
  bound_port = ntohs(addr.sin_port);
  return fd;
}

void EpollServer::start() {
  if (running_.load(std::memory_order_acquire)) return;
  listen_fd_ = open_listener(options_.port, port_);
  if (options_.admin != nullptr) {
    try {
      admin_listen_fd_ = open_listener(options_.admin_port, admin_port_);
    } catch (...) {
      close(listen_fd_);
      listen_fd_ = -1;
      throw;
    }
  }

  stopping_.store(false, std::memory_order_release);
  acceptor_wake_fd_ = make_eventfd();
  loops_.clear();
  for (std::size_t i = 0; i < options_.num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->index = i;
    loop->epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) throw_errno("epoll_create1");
    loop->wake_fd = make_eventfd();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    if (epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) < 0) {
      throw_errno("epoll_ctl wake fd");
    }
    loops_.push_back(std::move(loop));
  }
  running_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, l = loop.get()] { loop_main(*l); });
  }
  acceptor_ = std::thread([this] { acceptor_main(); });
  log_info() << "net: listening on " << options_.bind_address << ":" << port_
             << " (" << options_.num_loops << " event loop(s))";
  if (admin_listen_fd_ >= 0) {
    log_info() << "net: admin plane on " << options_.bind_address << ":"
               << admin_port_;
  }
}

void EpollServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  ring_eventfd(acceptor_wake_fd_);
  for (auto& loop : loops_) ring_eventfd(loop->wake_fd);
  if (acceptor_.joinable()) acceptor_.join();
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (auto& loop : loops_) {
    // Loop threads exited without touching their maps again; closing the
    // conversation objects here releases any sessions still open.
    for (auto& [fd, conn] : loop->conns) {
      conn->text.reset();
      conn->binary.reset();
      conn->http.reset();
      close(fd);
    }
    loop->conns.clear();
    {
      const std::lock_guard lock(loop->pending_mu);
      for (const auto& [fd, is_admin] : loop->pending) close(fd);
      loop->pending.clear();
    }
    close(loop->wake_fd);
    close(loop->epoll_fd);
  }
  loops_.clear();
  close(acceptor_wake_fd_);
  acceptor_wake_fd_ = -1;
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  if (admin_listen_fd_ >= 0) close(admin_listen_fd_);
  admin_listen_fd_ = -1;
  connections_open_->set(0.0);
  for (const LoopInstruments& li : loop_instruments_) {
    li.connections_open->set(0.0);
  }
}

void EpollServer::acceptor_main() {
  const int epoll_fd = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) {
    log_error() << "net: acceptor epoll_create1: " << std::strerror(errno);
    return;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  if (admin_listen_fd_ >= 0) {
    ev.data.fd = admin_listen_fd_;
    epoll_ctl(epoll_fd, EPOLL_CTL_ADD, admin_listen_fd_, &ev);
  }
  ev.data.fd = acceptor_wake_fd_;
  epoll_ctl(epoll_fd, EPOLL_CTL_ADD, acceptor_wake_fd_, &ev);

  // Drains one listener to EAGAIN, round-robining accepted fds onto the
  // event loops. Admin connections ride the same loops, tagged so adoption
  // binds an AdminConn instead of sniffing the protocol.
  const auto drain_accepts = [&](int listen_fd, bool is_admin) {
    for (;;) {
      const int fd =
          accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        log_error() << "net: accept: " << std::strerror(errno);
        break;
      }
      if (CMARKOV_FAILPOINT("net.accept_fail")) {
        // Model post-accept setup failure (fd limits, abrupt RST): the
        // connection is dropped, the accept loop keeps running.
        log_error() << "net: accept failed (failpoint net.accept_fail)";
        close(fd);
        continue;
      }
      set_nonblocking_checks(fd);
      const int nodelay = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));
      Loop& loop = *loops_[next_loop_];
      next_loop_ = (next_loop_ + 1) % loops_.size();
      {
        const std::lock_guard lock(loop.pending_mu);
        loop.pending.emplace_back(fd, is_admin);
      }
      ring_eventfd(loop.wake_fd);
      connections_total_->add(1);
    }
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    epoll_event events[16];
    const int n = epoll_wait(epoll_fd, events, 16, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool accept_ready = false;
    bool admin_ready = false;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == acceptor_wake_fd_) {
        drain_eventfd(acceptor_wake_fd_);
      } else if (events[i].data.fd == admin_listen_fd_) {
        admin_ready = true;
      } else {
        accept_ready = true;
      }
    }
    if (accept_ready) drain_accepts(listen_fd_, false);
    if (admin_ready) drain_accepts(admin_listen_fd_, true);
  }
  close(epoll_fd);
}

void EpollServer::adopt_pending(Loop& loop) {
  std::vector<std::pair<int, bool>> fds;
  {
    const std::lock_guard lock(loop.pending_mu);
    fds.swap(loop.pending);
  }
  for (const auto& [fd, is_admin] : fds) {
    auto conn = std::make_unique<Conn>(fd);
    conn->accepted_micros = manager_.now_micros();
    if (is_admin) {
      conn->mode = Conn::Mode::kHttp;
      conn->http = std::make_unique<AdminConn>(*options_.admin);
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      log_error() << "net: epoll_ctl add: " << std::strerror(errno);
      close(fd);
      continue;
    }
    loop.conns.emplace(fd, std::move(conn));
    connections_open_->add(1.0);
    loop_instruments_[loop.index].connections_open->add(1.0);
  }
}

void EpollServer::loop_main(Loop& loop) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  // With the handshake reaper on, epoll_wait must return periodically even
  // on a silent loop — half the timeout, clamped to [1ms, 1s].
  int wait_ms = -1;
  if (options_.handshake_timeout_micros > 0) {
    wait_ms = static_cast<int>(std::max<std::uint64_t>(
        1, std::min<std::uint64_t>(options_.handshake_timeout_micros / 2000,
                                   1000)));
  }
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = epoll_wait(loop.epoll_fd, events, kMaxEvents, wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      log_error() << "net: epoll_wait: " << std::strerror(errno);
      break;
    }
    if (options_.handshake_timeout_micros > 0) reap_stalled_handshakes(loop);
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == loop.wake_fd) {
        drain_eventfd(loop.wake_fd);
        adopt_pending(loop);
        continue;
      }
      const auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        close_conn(loop, conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) {
        flush_writes(loop, conn);
        if (loop.conns.find(fd) == loop.conns.end()) continue;
        resume_reads(loop, conn);
      }
      if (loop.conns.find(fd) == loop.conns.end()) continue;
      if (events[i].events & (EPOLLIN | EPOLLRDHUP)) {
        handle_readable(loop, conn);
      }
    }
  }
}

void EpollServer::handle_readable(Loop& loop, Conn& conn) {
  // Edge-triggered: must read to EAGAIN or the event is lost — unless the
  // write backlog hits the high-water mark, in which case reads pause and
  // resume_reads() (off the EPOLLOUT drain) re-enters this path.
  const int fd = conn.fd;
  char buf[64 * 1024];
  if (CMARKOV_FAILPOINT("net.read_fail")) {
    // Model a hard socket read error (ECONNRESET mid-stream): the
    // connection closes, its session winds down through the conversation
    // object, and the rest of the loop is untouched.
    log_error() << "net: read failed (failpoint net.read_fail)";
    close_conn(loop, conn);
    return;
  }
  for (;;) {
    bool paused = false;
    for (;;) {
      if (conn.backlog() >= options_.outbuf_high_water) {
        conn.read_paused = true;
        paused = true;
        break;
      }
      const ssize_t n = read(conn.fd, buf, sizeof(buf));
      if (n > 0) {
        bytes_read_total_->add(static_cast<std::uint64_t>(n));
        loop_instruments_[loop.index].bytes_read->add(
            static_cast<std::uint64_t>(n));
        process_input(loop, conn, buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n == 0) {  // peer closed
        close_conn(loop, conn);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(loop, conn);
      return;
    }
    flush_writes(loop, conn);
    if (loop.conns.find(fd) == loop.conns.end()) return;  // closed in flush
    if (!paused) return;  // read to EAGAIN
    if (conn.backlog() >= options_.outbuf_high_water / 4) return;
    // The flush drained the backlog synchronously: keep reading, or bytes
    // already in the kernel buffer would wait for an edge that never fires.
    conn.read_paused = false;
  }
}

void EpollServer::resume_reads(Loop& loop, Conn& conn) {
  if (!conn.read_paused ||
      conn.backlog() >= options_.outbuf_high_water / 4) {
    return;
  }
  conn.read_paused = false;
  handle_readable(loop, conn);
}

void EpollServer::process_input(Loop& loop, Conn& conn, const char* data,
                                std::size_t size) {
  if (conn.mode == Conn::Mode::kHttp) {
    conn.inbuf.append(data, size);
    const bool keep_open = conn.http->consume(conn.inbuf, conn.outbuf);
    if (conn.http->requests_handled() > 0) conn.handshake_done = true;
    if (!keep_open) conn.want_close = true;
    return;
  }
  if (conn.mode == Conn::Mode::kUnknown) {
    conn.inbuf.append(data, size);
    static const char kMagicBytes[4] = {'C', 'M', 'K', 'B'};
    const std::size_t check = std::min<std::size_t>(conn.inbuf.size(), 4);
    if (std::memcmp(conn.inbuf.data(), kMagicBytes, check) != 0) {
      conn.mode = Conn::Mode::kText;
      conn.text = std::make_unique<ProtocolSession>(manager_);
    } else if (conn.inbuf.size() >= 4) {
      conn.mode = Conn::Mode::kBinary;
      conn.binary = std::make_unique<BinarySession>(manager_);
      conn.parser.feed(conn.inbuf.data(), conn.inbuf.size());
      conn.inbuf.clear();
      process_frames(loop, conn);
      return;
    } else {
      return;  // fewer than 4 bytes, all matching the magic prefix: wait
    }
    process_text(loop, conn);
    return;
  }
  if (conn.mode == Conn::Mode::kText) {
    conn.inbuf.append(data, size);
    process_text(loop, conn);
  } else {
    conn.parser.feed(data, size);
    process_frames(loop, conn);
  }
}

void EpollServer::process_text(Loop& loop, Conn& conn) {
  std::size_t start = 0;
  for (;;) {
    const std::size_t nl = conn.inbuf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(conn.inbuf.data() + start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    text_lines_total_->add(1);
    loop_instruments_[loop.index].units->add(1);
    conn.handshake_done = true;
    const std::string response = conn.text->handle_line(line);
    if (!response.empty()) {
      conn.outbuf += response;
      conn.outbuf += '\n';
    }
    start = nl + 1;
    if (conn.text->closed()) {
      conn.want_close = true;
      break;
    }
  }
  conn.inbuf.erase(0, start);
}

void EpollServer::process_frames(Loop& loop, Conn& conn) {
  while (auto frame = conn.parser.next()) {
    frames_total_->add(1);
    loop_instruments_[loop.index].units->add(1);
    conn.handshake_done = true;
    const BinarySession::Output out = conn.binary->handle_frame(*frame);
    conn.outbuf += out.bytes;
    if (out.close) {
      conn.want_close = true;
      return;
    }
  }
  if (!conn.parser.error().empty() && !conn.want_close) {
    frame_errors_total_->add(1);
    log_debug() << "net: framing violation: " << conn.parser.error();
    conn.outbuf += encode_frame(FrameOp::kError, 0, conn.parser.error());
    conn.want_close = true;
  }
}

void EpollServer::flush_writes(Loop& loop, Conn& conn) {
  while (conn.outpos < conn.outbuf.size()) {
    std::size_t len = conn.outbuf.size() - conn.outpos;
    // Model a kernel short write (tiny send buffer): one byte goes out,
    // the residue parks in outbuf and EPOLLOUT finishes the job — the
    // exact partial-flush machinery a slow reader exercises.
    const bool shortened = CMARKOV_FAILPOINT("net.write_short");
    if (shortened) len = 1;
    const ssize_t n = write(conn.fd, conn.outbuf.data() + conn.outpos, len);
    if (n > 0) {
      bytes_written_total_->add(static_cast<std::uint64_t>(n));
      loop_instruments_[loop.index].bytes_written->add(
          static_cast<std::uint64_t>(n));
      conn.outpos += static_cast<std::size_t>(n);
      if (shortened) {
        // Force update_interest to re-MOD the fd: with edge-triggered
        // epoll the socket never actually lost writability, so only a MOD
        // makes the next EPOLLOUT fire and the drain progress.
        conn.want_write = false;
        break;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close_conn(loop, conn);  // peer gone mid-write
    return;
  }
  if (conn.outpos == conn.outbuf.size()) {
    conn.outbuf.clear();
    conn.outpos = 0;
    if (conn.want_close) {
      close_conn(loop, conn);
      return;
    }
  } else if (conn.outpos >= 64 * 1024) {
    // Partial flush: drop the already-written prefix so a slowly-read
    // connection holds only its live backlog, not every byte ever sent.
    conn.outbuf.erase(0, conn.outpos);
    conn.outpos = 0;
  }
  update_interest(loop, conn);
}

void EpollServer::update_interest(Loop& loop, Conn& conn) {
  const bool needs_write = conn.outpos < conn.outbuf.size();
  if (needs_write == conn.want_write) return;
  conn.want_write = needs_write;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
  if (needs_write) ev.events |= EPOLLOUT;
  ev.data.fd = conn.fd;
  if (epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) < 0) {
    log_error() << "net: epoll_ctl mod: " << std::strerror(errno);
  }
}

void EpollServer::reap_stalled_handshakes(Loop& loop) {
  const double now = manager_.now_micros();
  if (now < loop.next_sweep_micros) return;
  const double timeout =
      static_cast<double>(options_.handshake_timeout_micros);
  // Sweep at most twice per timeout window: lateness is bounded by half a
  // window, and thousands of healthy connections aren't rescanned per tick.
  loop.next_sweep_micros = now + timeout / 2.0;
  std::vector<int> stalled;
  for (const auto& [fd, conn] : loop.conns) {
    if (!conn->handshake_done && now - conn->accepted_micros >= timeout) {
      stalled.push_back(fd);
    }
  }
  for (const int fd : stalled) {
    const auto it = loop.conns.find(fd);
    if (it == loop.conns.end()) continue;
    log_info() << "net: closing connection fd=" << fd
               << ": no handshake within "
               << options_.handshake_timeout_micros / 1000 << "ms";
    handshake_timeouts_total_->add(1);
    close_conn(loop, *it->second);
  }
}

void EpollServer::close_conn(Loop& loop, Conn& conn) {
  const int fd = conn.fd;
  epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  // Destroying the conversation object closes its session (drains first),
  // matching the text transport's disconnect semantics.
  loop.conns.erase(fd);
  close(fd);
  connections_open_->add(-1.0);
  loop_instruments_[loop.index].connections_open->add(-1.0);
}

std::vector<LoopStatus> EpollServer::loop_status() const {
  std::vector<LoopStatus> out(loop_instruments_.size());
  for (std::size_t i = 0; i < loop_instruments_.size(); ++i) {
    out[i].loop = i;
    out[i].connections_open = loop_instruments_[i].connections_open->value();
    out[i].bytes_read = loop_instruments_[i].bytes_read->value();
    out[i].bytes_written = loop_instruments_[i].bytes_written->value();
    out[i].units = loop_instruments_[i].units->value();
  }
  return out;
}

}  // namespace cmarkov::serve::net
