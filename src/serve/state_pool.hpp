// Free-list of per-session monitor buffers (window ring + scoring
// scratch). At the million-session scale the serving tier targets, session
// churn (open/evict/restore) would otherwise allocate and free two small
// vectors per transition; recycling them keeps the allocator out of the
// lifecycle path and makes the bytes/session bill stable. Bounded so a
// burst of closures cannot hoard memory forever.
#pragma once

#include <mutex>
#include <utility>
#include <vector>

#include "src/core/online_monitor.hpp"

namespace cmarkov::serve {

class StatePool {
 public:
  explicit StatePool(std::size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  /// A recycled buffer pair, or a default (empty) one when the pool is dry.
  core::MonitorStorage acquire() {
    const std::lock_guard lock(mu_);
    if (free_.empty()) return {};
    core::MonitorStorage storage = std::move(free_.back());
    free_.pop_back();
    return storage;
  }

  /// Returns buffers to the pool; silently discards beyond the bound.
  void release(core::MonitorStorage storage) {
    const std::lock_guard lock(mu_);
    if (free_.size() >= max_entries_) return;
    free_.push_back(std::move(storage));
  }

  std::size_t size() const {
    const std::lock_guard lock(mu_);
    return free_.size();
  }

 private:
  mutable std::mutex mu_;
  std::size_t max_entries_;
  std::vector<core::MonitorStorage> free_;
};

}  // namespace cmarkov::serve
