// Unit tests for the aggregation operation (Section IV): callee inlining,
// context preservation, silent pass-through closure, recursion handling.
#include <gtest/gtest.h>

#include "src/analysis/aggregation.hpp"
#include "src/cfg/cfg_builder.hpp"
#include "src/ir/module.hpp"

namespace cmarkov::analysis {
namespace {

AggregatedProgram aggregate(const char* source,
                            FunctionMatrixOptions options = {}) {
  const auto module =
      cfg::build_module_cfg(ir::ProgramModule::from_source("t", source));
  const auto graph = cfg::CallGraph::build(module);
  static const UniformBranchHeuristic heuristic;
  return aggregate_program(module, graph, heuristic, options);
}

CallSymbol sys_at(const std::string& name, const std::string& fn) {
  return CallSymbol::external(ir::CallKind::kSyscall, name, fn);
}

TEST(AggregationTest, ProgramMatrixHasNoInternalSymbols) {
  const auto result = aggregate(R"(
fn c() { sys("c1"); }
fn b() { c(); sys("b1"); }
fn a() { b(); }
fn main() { a(); }
)");
  for (std::size_t i = 0; i < result.program_matrix.size(); ++i) {
    EXPECT_NE(result.program_matrix.symbol(i).kind,
              CallSymbol::Kind::kInternal);
  }
}

TEST(AggregationTest, InliningChainsCallerAndCalleeCalls) {
  const auto result = aggregate(R"(
fn helper() { sys("h"); }
fn main() { sys("a"); helper(); sys("b"); }
)");
  const auto& m = result.program_matrix;
  // a -> (enter helper) -> h, then h -> (return) -> b.
  EXPECT_DOUBLE_EQ(m.prob(sys_at("a", "main"), sys_at("h", "helper")), 1.0);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("h", "helper"), sys_at("b", "main")), 1.0);
  EXPECT_DOUBLE_EQ(m.prob(CallSymbol::entry("main"), sys_at("a", "main")),
                   1.0);
}

TEST(AggregationTest, ContextIsPreservedThroughInlining) {
  // write@f stays write@f after f is inlined into g and g into main
  // (Section IV's aggregation example).
  const auto result = aggregate(R"(
fn f() { sys("write"); }
fn g() { f(); }
fn main() { g(); }
)");
  EXPECT_TRUE(result.program_matrix.contains(sys_at("write", "f")));
  EXPECT_FALSE(result.program_matrix.contains(sys_at("write", "g")));
  EXPECT_FALSE(result.program_matrix.contains(sys_at("write", "main")));
}

TEST(AggregationTest, SilentCalleeIsPassThrough) {
  const auto result = aggregate(R"(
fn quiet() { var x = 1; }
fn main() { sys("a"); quiet(); sys("b"); }
)");
  EXPECT_DOUBLE_EQ(
      result.program_matrix.prob(sys_at("a", "main"), sys_at("b", "main")),
      1.0);
}

TEST(AggregationTest, ConditionallySilentCalleeSplitsMass) {
  const auto result = aggregate(R"(
fn maybe() { if (input()) { sys("m"); } }
fn main() { sys("a"); maybe(); sys("b"); }
)");
  const auto& m = result.program_matrix;
  EXPECT_DOUBLE_EQ(m.prob(sys_at("a", "main"), sys_at("m", "maybe")), 0.5);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("a", "main"), sys_at("b", "main")), 0.5);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("m", "maybe"), sys_at("b", "main")), 0.5);
}

TEST(AggregationTest, CalleeInternalTransitionsScaleByInvocations) {
  // helper is invoked from two sites; its inner h1->h2 transition should
  // appear with the total invocation mass (2 invocations per main run).
  const auto result = aggregate(R"(
fn helper() { sys("h1"); sys("h2"); }
fn main() { helper(); helper(); }
)");
  const auto& m = result.program_matrix;
  EXPECT_DOUBLE_EQ(m.prob(sys_at("h1", "helper"), sys_at("h2", "helper")),
                   2.0);
  // Between invocations: h2 -> h1.
  EXPECT_DOUBLE_EQ(m.prob(sys_at("h2", "helper"), sys_at("h1", "helper")),
                   1.0);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("h2", "helper"), CallSymbol::exit("main")),
                   1.0);
}

TEST(AggregationTest, SelfRecursionBecomesPassThrough) {
  const auto result = aggregate(R"(
fn f(n) {
  sys("a");
  if (n > 0) { f(n - 1); }
  sys("b");
}
fn main() { f(3); }
)");
  const auto& m = result.program_matrix;
  // The recursive site is transparent: a -> b both with and without the
  // recursion branch; total a -> b mass is 1 (0.5 direct + 0.5 through the
  // pass-through site).
  EXPECT_NEAR(m.prob(sys_at("a", "f"), sys_at("b", "f")), 1.0, 1e-9);
}

TEST(AggregationTest, MutualRecursionStillResolves) {
  const auto result = aggregate(R"(
fn ping(n) { sys("p"); if (n > 0) { pong(n - 1); } }
fn pong(n) { sys("q"); if (n > 0) { ping(n - 1); } }
fn main() { ping(4); }
)");
  for (std::size_t i = 0; i < result.program_matrix.size(); ++i) {
    EXPECT_NE(result.program_matrix.symbol(i).kind,
              CallSymbol::Kind::kInternal);
  }
  EXPECT_TRUE(result.program_matrix.contains(sys_at("p", "ping")));
}

TEST(AggregationTest, PerFunctionMatricesExposed) {
  const auto result = aggregate(R"(
fn helper() { sys("h"); }
fn main() { helper(); }
)");
  ASSERT_TRUE(result.per_function.contains("helper"));
  ASSERT_TRUE(result.per_function.contains("main"));
  const auto& helper = result.per_function.at("helper");
  EXPECT_DOUBLE_EQ(
      helper.prob(CallSymbol::entry("helper"), sys_at("h", "helper")), 1.0);
}

TEST(AggregationTest, TimingsRecordedWhenRequested) {
  const auto module = cfg::build_module_cfg(ir::ProgramModule::from_source(
      "t", "fn helper() { sys(\"h\"); } fn main() { helper(); }"));
  const auto graph = cfg::CallGraph::build(module);
  const UniformBranchHeuristic heuristic;
  PhaseTimer timings;
  aggregate_program(module, graph, heuristic, {}, &timings);
  EXPECT_EQ(timings.count("probability"), 2u);
  EXPECT_EQ(timings.count("aggregation"), 2u);
}

TEST(SummarizeCalleeTest, ExtractsEntryExitAndPassThrough) {
  const auto result = aggregate(R"(
fn maybe() { if (input()) { sys("m"); } }
fn main() { maybe(); }
)");
  const CalleeSummary summary =
      summarize_callee(result.per_function.at("maybe"));
  EXPECT_NEAR(summary.pass_through, 0.5, 1e-12);
  ASSERT_EQ(summary.entry_dist.size(), 1u);
  EXPECT_EQ(summary.entry_dist[0].first.name, "m");
  EXPECT_NEAR(summary.entry_dist[0].second, 0.5, 1e-12);
  ASSERT_EQ(summary.exit_counts.size(), 1u);
  EXPECT_NEAR(summary.exit_counts[0].second, 0.5, 1e-12);
}

TEST(SummarizeCalleeTest, RejectsUnresolvedMatrix) {
  CallTransitionMatrix m;
  m.add_symbol(CallSymbol::entry("f"));
  m.add_symbol(CallSymbol::exit("f"));
  m.add_symbol(CallSymbol::internal("g"));
  EXPECT_THROW(summarize_callee(m), std::invalid_argument);
}

TEST(ResolveInternalSymbolTest, GeometricSilentChainClosure) {
  // Hand-built matrix: x -> s (1.0), s -> s (0.5), s -> y (0.5), with a
  // fully silent callee. Eliminating s must route all of x's mass to y.
  CallTransitionMatrix m;
  const auto entry = CallSymbol::entry("f");
  const auto exit = CallSymbol::exit("f");
  const auto x = CallSymbol::external(ir::CallKind::kSyscall, "x", "f");
  const auto y = CallSymbol::external(ir::CallKind::kSyscall, "y", "f");
  const auto s = CallSymbol::internal("g");
  const auto ei = m.add_symbol(entry);
  const auto xi = m.add_symbol(x);
  const auto yi = m.add_symbol(y);
  const auto si = m.add_symbol(s);
  const auto oi = m.add_symbol(exit);
  m.set_prob(ei, xi, 1.0);
  m.set_prob(xi, si, 1.0);
  m.set_prob(si, si, 0.5);
  m.set_prob(si, yi, 0.5);
  m.set_prob(yi, oi, 1.0);

  const CallTransitionMatrix resolved =
      resolve_internal_symbol(m, s, nullptr);
  EXPECT_FALSE(resolved.contains(s));
  EXPECT_NEAR(resolved.prob(x, y), 1.0, 1e-12);
}

}  // namespace
}  // namespace cmarkov::analysis
