#include "src/core/pipeline.hpp"

#include "src/cfg/cfg_builder.hpp"
#include "src/obs/metrics_registry.hpp"
#include "src/obs/run_profile.hpp"

namespace cmarkov::core {

StaticPipelineResult run_static_pipeline(const ir::ProgramModule& program,
                                         const PipelineConfig& config,
                                         Rng& rng) {
  StaticPipelineResult result;
  result.init_encoding = config.context_sensitive
                             ? hmm::ObservationEncoding::kContextSensitive
                             : hmm::ObservationEncoding::kContextFree;

  obs::RunProfile* profile = config.exec.profile;

  {
    const obs::ScopedTimer analyze_span(profile, "analyze");
    {
      ScopedPhase phase(result.timings, "cfg");
      const obs::ScopedTimer span(profile, "cfg");
      result.module_cfg = cfg::build_module_cfg(program);
      result.call_graph = cfg::CallGraph::build(result.module_cfg);
    }

    analysis::FunctionMatrixOptions matrix_options = config.matrix;
    matrix_options.filter = config.filter;
    const auto heuristic = analysis::make_branch_heuristic(
        matrix_options.heuristic, matrix_options.loop_probability);
    analysis::AggregatedProgram aggregated;
    {
      const obs::ScopedTimer span(profile, "aggregate");
      aggregated = analysis::aggregate_program(result.module_cfg,
                                               result.call_graph, *heuristic,
                                               matrix_options,
                                               &result.timings);
    }

    result.program_matrix =
        config.context_sensitive
            ? std::move(aggregated.program_matrix)
            : analysis::project_context_insensitive(
                  aggregated.program_matrix);
    result.distinct_calls = result.program_matrix.external_indices().size();
  }

  {
    ScopedPhase phase(result.timings, "clustering");
    const obs::ScopedTimer span(profile, "reduce");
    reduction::ClusteringOptions clustering_options = config.clustering;
    clustering_options.exec.adopt_runtime(config.exec);
    result.clustering =
        reduction::cluster_calls(result.program_matrix, rng,
                                 clustering_options);
    result.reduced = reduction::reconstruct_reduced_model(
        result.program_matrix, result.clustering);
  }

  {
    ScopedPhase phase(result.timings, "initialization");
    const obs::ScopedTimer span(profile, "init");
    result.init = hmm::statically_initialized_hmm(
        result.reduced, result.init_encoding, result.alphabet,
        config.static_init);
  }

  if (config.exec.metrics != nullptr) {
    auto& m = *config.exec.metrics;
    m.counter("cmarkov_pipeline_runs_total").add(1);
    m.gauge("cmarkov_pipeline_distinct_calls")
        .set(static_cast<double>(result.distinct_calls));
    m.gauge("cmarkov_pipeline_states")
        .set(static_cast<double>(result.init.model.num_states()));
  }
  return result;
}

}  // namespace cmarkov::core
