// Frame-protocol counterpart of ProtocolSession: one BinarySession is one
// CMKB conversation, which is one monitored session. It owns the session
// it opens (destroying the object without BYE closes it — transport
// disconnect semantics identical to the text protocol).
//
// Error handling is two-tier, matching the frame spec:
//   - application errors (unknown model, no HELLO yet, queue-full reject)
//     answer a kReply frame carrying the same "ERR ..." line the text
//     protocol produces, and the conversation continues;
//   - protocol violations (malformed payload, unknown op) answer one
//     kError frame and ask the server to drop the connection — a client
//     that misframes once is desynchronized for good.
#pragma once

#include <string>

#include "src/serve/net/frame.hpp"
#include "src/serve/session_manager.hpp"

namespace cmarkov::serve::net {

class BinarySession {
 public:
  explicit BinarySession(SessionManager& manager);
  ~BinarySession();
  BinarySession(const BinarySession&) = delete;
  BinarySession& operator=(const BinarySession&) = delete;

  struct Output {
    /// Encoded response frame(s) to send; may be empty (kFlagNoReply).
    std::string bytes;
    /// The connection must be closed once `bytes` is flushed.
    bool close = false;
  };

  /// Dispatches one decoded frame. Never throws.
  Output handle_frame(const Frame& frame);

  /// Empty until HELLO succeeds.
  const std::string& session_id() const { return session_id_; }

  /// True once BYE was processed (the session is closed and released).
  bool closed() const { return closed_; }

 private:
  Output reply(std::string line) const;
  Output protocol_error(std::string reason) const;
  Output handle_hello(const Frame& frame);
  Output handle_event_batch(const Frame& frame);

  SessionManager& manager_;
  std::string session_id_;
  /// HELLO's trace id; applied to every event of the conversation.
  std::string trace_id_;
  bool closed_ = false;
};

}  // namespace cmarkov::serve::net
