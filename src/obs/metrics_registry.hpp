// Lock-cheap metrics primitives shared by every cmarkov layer: counters,
// gauges, and fixed-bucket histograms behind a name-keyed registry.
//
// Hot paths resolve instruments once (registry lookups take a mutex) and
// then record through plain pointers: Counter spreads increments over
// cache-line-padded per-thread cells that are merged on read, so concurrent
// writers never contend on one line; Histogram and Gauge use relaxed
// atomics. Instruments live as long as the registry, so cached pointers
// stay valid. Naming convention: cmarkov_<subsystem>_<name>{unit}
// (docs/OBSERVABILITY.md).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cmarkov::obs {

namespace detail {

/// Small dense ordinal for the calling thread, assigned on first use.
/// Counters hash this (not std::thread::id) so that short-lived threads
/// reuse shards deterministically cheaply.
std::size_t thread_ordinal();

struct alignas(64) PaddedCell {
  std::atomic<std::uint64_t> value{0};
};

/// Atomically adds `delta` to an atomic double (CAS loop; no
/// fetch_add(double) portability assumptions).
void atomic_add(std::atomic<double>& target, double delta);

}  // namespace detail

/// Monotonic counter, sharded across padded per-thread cells. add() is
/// wait-free (one relaxed fetch_add on a thread-local shard); value()
/// merges all shards and may be a momentarily stale sum while writers are
/// active — exact once writers have quiesced.
class Counter {
 public:
  static constexpr std::size_t kShards = 16;
  static_assert((kShards & (kShards - 1)) == 0, "shard mask needs pow2");

  void add(std::uint64_t delta = 1) {
    cells_[detail::thread_ordinal() & (kShards - 1)].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_) {
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<detail::PaddedCell, kShards> cells_{};
};

/// Last-write-wins instantaneous value (queue depth, utilization ratio).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: one atomic count per bucket plus an implicit
/// overflow bucket and a running sum. Bounds are validated at construction
/// (non-empty, finite, strictly increasing) — see ISSUE 4 bugfix; the old
/// serve LatencyHistogram accepted any list silently.
class Histogram {
 public:
  /// Throws std::invalid_argument unless `upper_bounds` is non-empty,
  /// finite, and strictly increasing.
  explicit Histogram(std::span<const double> upper_bounds);

  void record(double value);

  std::uint64_t count() const;
  double sum() const;
  /// Smallest bucket upper bound covering quantile `q` of recorded values
  /// (conservative, like Prometheus histogram_quantile); saturates at the
  /// last finite bound when `q` lands in the overflow bucket. Returns 0
  /// when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts; one extra trailing entry for the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<detail::PaddedCell[]> buckets_;  // bounds_.size() + 1
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of one histogram, used by exporters and snapshots.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
};

/// Name-keyed instrument registry. Lookup takes a mutex (cold path);
/// returned references stay valid for the registry's lifetime, so callers
/// cache them. Re-registering a histogram name with different bounds is an
/// error.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds);

  struct Snapshot {
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shared bucket layout for stage-duration histograms (seconds): 1-2-5
/// decades from 100 microseconds to 100 seconds.
std::span<const double> seconds_bucket_bounds();

}  // namespace cmarkov::obs
