// Unit tests for the eval::compare_models driver (options handling,
// determinism, score bookkeeping) and full-mode/quick-mode defaults.
#include <gtest/gtest.h>

#include "src/eval/comparison.hpp"

namespace cmarkov::eval {
namespace {

ComparisonOptions tiny_options() {
  ComparisonOptions options;
  options.test_cases = 15;
  options.abnormal_count = 120;
  options.cv.folds = 2;
  options.cv.max_train_segments = 80;
  options.training.max_iterations = 3;
  options.seed = 5;
  return options;
}

TEST(ComparisonTest, RunsRequestedKindsOnly) {
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  auto options = tiny_options();
  options.kinds = {ModelKind::kStilo, ModelKind::kRegularBasic};
  const SuiteComparison result =
      compare_models(suite, analysis::CallFilter::kSyscalls, options);
  ASSERT_EQ(result.models.size(), 2u);
  EXPECT_EQ(result.models[0].kind, ModelKind::kStilo);
  EXPECT_EQ(result.models[1].kind, ModelKind::kRegularBasic);
  EXPECT_THROW(result.model(ModelKind::kCMarkov), std::invalid_argument);
}

TEST(ComparisonTest, ScoreCountsMatchProtocol) {
  const workload::ProgramSuite suite = workload::make_sed_suite();
  const auto options = tiny_options();
  const SuiteComparison result =
      compare_models(suite, analysis::CallFilter::kSyscalls, options);
  for (const auto& model : result.models) {
    // Every abnormal segment is scored once per fold.
    EXPECT_EQ(model.scores.abnormal.size(),
              options.abnormal_count * options.cv.folds);
    // Normal test scores pool to (roughly) the unique segment count; the
    // dedup is per-model-encoding so only the first model's count is
    // recorded in the summary.
    EXPECT_GT(model.scores.normal.size(), 0u);
  }
  EXPECT_EQ(result.program, "sed");
  EXPECT_GT(result.unique_normal_segments, 0u);
  EXPECT_EQ(result.abnormal_segments, options.abnormal_count);
}

TEST(ComparisonTest, DeterministicGivenSeed) {
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  auto options = tiny_options();
  options.kinds = {ModelKind::kCMarkov};
  const auto a = compare_models(suite, analysis::CallFilter::kSyscalls,
                                options);
  const auto b = compare_models(suite, analysis::CallFilter::kSyscalls,
                                options);
  ASSERT_EQ(a.models[0].scores.normal.size(),
            b.models[0].scores.normal.size());
  for (std::size_t i = 0; i < a.models[0].scores.normal.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.models[0].scores.normal[i],
                     b.models[0].scores.normal[i]);
  }
}

TEST(ComparisonTest, SeedChangesResults) {
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  auto options = tiny_options();
  options.kinds = {ModelKind::kRegularBasic};
  auto other = options;
  other.seed = options.seed + 1;
  const auto a = compare_models(suite, analysis::CallFilter::kSyscalls,
                                options);
  const auto b = compare_models(suite, analysis::CallFilter::kSyscalls,
                                other);
  EXPECT_NE(a.models[0].scores.normal, b.models[0].scores.normal);
}

TEST(ComparisonTest, WorksOnCombinedCallStream) {
  // CallFilter::kAll trains one model over both syscalls and libcalls.
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  auto options = tiny_options();
  options.kinds = {ModelKind::kCMarkov};
  const auto result =
      compare_models(suite, analysis::CallFilter::kAll, options);
  const auto& model = result.model(ModelKind::kCMarkov);
  EXPECT_GT(model.alphabet_size, 0u);
  // The combined alphabet is at least as large as either stream's.
  const auto sys_only =
      compare_models(suite, analysis::CallFilter::kSyscalls, options);
  EXPECT_GE(model.alphabet_size,
            sys_only.model(ModelKind::kCMarkov).alphabet_size);
}

TEST(ComparisonTest, DefaultOptionsScaleWithMode) {
  const ComparisonOptions quick = default_comparison_options(false);
  const ComparisonOptions full = default_comparison_options(true);
  EXPECT_LT(quick.test_cases, full.test_cases);
  EXPECT_LT(quick.cv.folds, full.cv.folds);
  EXPECT_LE(quick.training.max_iterations, full.training.max_iterations);
  EXPECT_EQ(full.cv.folds, 10u);  // the paper's 10-fold protocol
}

TEST(ComparisonTest, FullModeFlagParsing) {
  const char* with_flag[] = {"bench", "--full"};
  const char* without[] = {"bench"};
  EXPECT_TRUE(full_mode_enabled(2, const_cast<char**>(with_flag)));
  EXPECT_FALSE(full_mode_enabled(1, const_cast<char**>(without)));
}

TEST(ComparisonTest, TrainTimingsRecorded) {
  const workload::ProgramSuite suite = workload::make_gzip_suite();
  auto options = tiny_options();
  options.kinds = {ModelKind::kRegularBasic};
  const auto result =
      compare_models(suite, analysis::CallFilter::kSyscalls, options);
  EXPECT_GT(result.model(ModelKind::kRegularBasic).train_seconds, 0.0);
  EXPECT_GT(result.model(ModelKind::kRegularBasic).train_iterations, 0u);
}

}  // namespace
}  // namespace cmarkov::eval
