// Chrome-trace exporters (the JSON array format chrome://tracing and
// Perfetto load): one for RunProfile span trees (`cmarkov train
// --chrome-trace`) and one for the serving tier's per-event SpanRecords
// (`cmarkovd --chrome-trace`). Both emit complete events ("ph":"X") with
// microsecond timestamps, fixed key order and locale-independent numbers,
// so output is byte-deterministic for deterministic input.
//
// A RunProfile stores durations but not start offsets; the exporter lays
// siblings out sequentially from their parent's start, which is exact for
// cmarkov's contiguous stage spans (docs/OBSERVABILITY.md).
#pragma once

#include <span>
#include <string>

#include "src/obs/run_profile.hpp"
#include "src/obs/trace/tracer.hpp"

namespace cmarkov::obs {

/// Chrome-trace array for a profile's span tree (pid 1, tid 1); each
/// span's `args` carries its merge count.
std::string chrome_trace_json(const RunProfile& profile);

/// Chrome-trace array for per-event spans: tid is the recording worker
/// shard, `args` carries session / trace id / event sequence.
std::string chrome_trace_json(std::span<const SpanRecord> spans);

}  // namespace cmarkov::obs
