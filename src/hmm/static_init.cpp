#include "src/hmm/static_init.hpp"

#include <stdexcept>

namespace cmarkov::hmm {

StaticInitResult statically_initialized_hmm(
    const reduction::ReducedModel& reduced, ObservationEncoding encoding,
    Alphabet& alphabet, const StaticInitOptions& options) {
  const std::size_t n = reduced.num_states();
  if (n == 0) {
    throw std::invalid_argument(
        "statically_initialized_hmm: model has no states (program makes no "
        "observable calls)");
  }

  StaticInitResult result;
  result.state_members = reduced.members;

  // Intern member observations first so ids exist before sizing B.
  std::vector<std::vector<std::size_t>> member_obs(n);
  for (std::size_t s = 0; s < n; ++s) {
    for (const auto& sym : reduced.members[s]) {
      member_obs[s].push_back(alphabet.intern(encode_observation(sym, encoding)));
    }
    if (reduced.members[s].size() == 1) {
      result.state_labels.push_back(
          encode_observation(reduced.members[s][0], encoding));
    } else {
      std::string label = "cluster{";
      for (std::size_t i = 0; i < reduced.members[s].size(); ++i) {
        if (i > 0) label += ",";
        if (i == 3 && reduced.members[s].size() > 4) {
          label += "+" + std::to_string(reduced.members[s].size() - 3);
          break;
        }
        label += encode_observation(reduced.members[s][i], encoding);
      }
      label += "}";
      result.state_labels.push_back(std::move(label));
    }
  }

  const std::size_t m = alphabet.size();
  Hmm& model = result.model;
  model.transition = Matrix(n, n);
  model.emission = Matrix(n, m);
  model.initial.assign(n, 0.0);

  // A: inter-cluster transition mass, row-normalized. Mass to program EXIT
  // has no successor state; folding it back into the row via normalization
  // matches the HMM's lack of a terminal state.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      model.transition(i, j) = reduced.transitions(i, j);
    }
  }
  model.transition.normalize_rows();

  // B: member observation weights.
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t i = 0; i < member_obs[s].size(); ++i) {
      model.emission(s, member_obs[s][i]) += reduced.member_weights[s][i];
    }
  }
  model.emission.normalize_rows();

  // pi: program-entry mass.
  double entry_total = 0.0;
  for (std::size_t s = 0; s < n; ++s) entry_total += reduced.entry_mass[s];
  if (entry_total > 0.0) {
    for (std::size_t s = 0; s < n; ++s) {
      model.initial[s] = reduced.entry_mass[s] / entry_total;
    }
  } else {
    // Entry makes no direct call (e.g. fully silent entry path): start
    // uniform; training sharpens it. Detection still constrains order via A.
    const double uniform = 1.0 / static_cast<double>(n);
    for (double& v : model.initial) v = uniform;
  }

  model.smooth(options.smoothing);
  model.validate();
  return result;
}

}  // namespace cmarkov::hmm
