#include "src/core/model_io.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cmarkov::core {

namespace {

constexpr const char* kMagic = "cmarkov-detector";
constexpr int kVersion = 1;

constexpr const char* kTrainerMagic = "cmarkov-trainer-state";
constexpr int kTrainerVersion = 1;

void write_matrix(std::ostream& out, const char* tag, const Matrix& m) {
  out << tag << " " << m.rows() << " " << m.cols() << "\n";
  out << std::setprecision(17);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out << " ";
      out << m(r, c);
    }
    out << "\n";
  }
}

Matrix read_matrix(std::istream& in, const std::string& expected_tag) {
  std::string tag;
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(in >> tag >> rows >> cols) || tag != expected_tag) {
    throw std::runtime_error("model_io: expected matrix tag '" +
                             expected_tag + "'");
  }
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (!(in >> m(r, c))) {
        throw std::runtime_error(
            "model_io: truncated or malformed '" + expected_tag +
            "' matrix at row " + std::to_string(r) + ", column " +
            std::to_string(c));
      }
    }
  }
  return m;
}

/// Reads one numeric value, failing loudly with the owning key's name.
template <typename T>
T read_value(std::istream& in, const char* key) {
  T value{};
  if (!(in >> value)) {
    throw std::runtime_error(
        std::string("model_io: malformed value for key '") + key + "'");
  }
  return value;
}

/// Reads a double that must be finite (rejects "nan"/"inf" spellings too,
/// which operator>> would not even parse).
double read_finite_double(std::istream& in, const char* key) {
  std::string token;
  if (!(in >> token)) {
    throw std::runtime_error(std::string("model_io: missing value for key '") +
                             key + "'");
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size() || !std::isfinite(value)) {
    throw std::runtime_error(std::string("model_io: key '") + key +
                             "' has non-finite or malformed value '" + token +
                             "'");
  }
  return value;
}

}  // namespace

void save_detector(std::ostream& out, const Detector& detector) {
  const DetectorConfig& config = detector.config();
  out << kMagic << " " << kVersion << "\n";
  out << "filter " << analysis::call_filter_name(config.pipeline.filter)
      << "\n";
  out << "context " << (config.pipeline.context_sensitive ? 1 : 0) << "\n";
  out << "segment_length " << config.segments.length << "\n";
  out << "trained " << (detector.trained() ? 1 : 0) << "\n";
  out << std::setprecision(17);
  out << "threshold " << detector.threshold() << "\n";

  const hmm::Alphabet& alphabet = detector.alphabet();
  out << "alphabet " << alphabet.size() << "\n";
  for (const auto& symbol : alphabet.symbols()) {
    out << symbol << "\n";  // observation strings never contain newlines
  }

  const hmm::Hmm& model = detector.model();
  write_matrix(out, "transition", model.transition);
  write_matrix(out, "emission", model.emission);
  out << "initial " << model.initial.size() << "\n";
  for (std::size_t i = 0; i < model.initial.size(); ++i) {
    if (i > 0) out << " ";
    out << model.initial[i];
  }
  out << "\n";
}

void save_detector_file(const std::string& path, const Detector& detector) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("model_io: cannot open '" + path +
                             "' for writing");
  }
  save_detector(out, detector);
}

Detector load_detector(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    throw std::runtime_error("model_io: not a cmarkov detector file");
  }
  int version = 0;
  if (!(in >> version)) {
    throw std::runtime_error(
        "model_io: malformed version line (expected '" + std::string(kMagic) +
        " <number>')");
  }
  if (version != kVersion) {
    throw std::runtime_error("model_io: unsupported version " +
                             std::to_string(version));
  }

  auto expect_key = [&](const char* key) {
    std::string seen;
    if (!(in >> seen) || seen != key) {
      throw std::runtime_error(std::string("model_io: expected key '") +
                               key + "'");
    }
  };

  DetectorConfig config;
  expect_key("filter");
  std::string filter_name;
  in >> filter_name;
  if (filter_name == "syscall") {
    config.pipeline.filter = analysis::CallFilter::kSyscalls;
  } else if (filter_name == "libcall") {
    config.pipeline.filter = analysis::CallFilter::kLibcalls;
  } else if (filter_name == "all") {
    config.pipeline.filter = analysis::CallFilter::kAll;
  } else {
    throw std::runtime_error("model_io: unknown filter '" + filter_name +
                             "'");
  }
  expect_key("context");
  config.pipeline.context_sensitive = read_value<int>(in, "context") != 0;
  expect_key("segment_length");
  config.segments.length = read_value<std::size_t>(in, "segment_length");
  expect_key("trained");
  const int trained = read_value<int>(in, "trained");
  expect_key("threshold");
  const double threshold = read_finite_double(in, "threshold");

  expect_key("alphabet");
  const auto alphabet_size = read_value<std::size_t>(in, "alphabet");
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  hmm::Alphabet alphabet;
  for (std::size_t i = 0; i < alphabet_size; ++i) {
    std::string symbol;
    if (!std::getline(in, symbol)) {
      throw std::runtime_error("model_io: truncated alphabet");
    }
    alphabet.intern(symbol);
  }
  if (alphabet.size() != alphabet_size) {
    throw std::runtime_error("model_io: duplicate alphabet symbols");
  }

  hmm::Hmm model;
  model.transition = read_matrix(in, "transition");
  model.emission = read_matrix(in, "emission");
  expect_key("initial");
  const auto initial_size = read_value<std::size_t>(in, "initial");
  model.initial.resize(initial_size);
  for (std::size_t i = 0; i < initial_size; ++i) {
    if (!(in >> model.initial[i])) {
      throw std::runtime_error(
          "model_io: truncated 'initial' vector at entry " +
          std::to_string(i));
    }
  }

  return Detector::from_parts(std::move(config), std::move(model),
                              std::move(alphabet), threshold, trained != 0);
}

Detector load_detector_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("model_io: cannot open '" + path + "'");
  }
  return load_detector(in);
}

namespace {

// ---- trainer-state codec -------------------------------------------------
// Doubles travel as IEEE-754 bit patterns in hex (see header): the state's
// purpose is to continue floating-point folds bit-identically, so the
// round trip must be exact, including signed zeros and subnormals.

void write_hex_double(std::ostream& out, double value) {
  out << std::hex << std::bit_cast<std::uint64_t>(value) << std::dec;
}

double read_hex_double(std::istream& in, const char* key) {
  std::string token;
  if (!(in >> token)) {
    throw std::runtime_error(std::string("model_io: missing value for key '") +
                             key + "'");
  }
  char* end = nullptr;
  const std::uint64_t bits = std::strtoull(token.c_str(), &end, 16);
  if (end != token.c_str() + token.size() || token.empty()) {
    throw std::runtime_error(std::string("model_io: key '") + key +
                             "' has malformed hex double '" + token + "'");
  }
  return std::bit_cast<double>(bits);
}

void write_hex_matrix(std::ostream& out, const char* tag, const Matrix& m) {
  out << tag << " " << m.rows() << " " << m.cols() << "\n";
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out << " ";
      write_hex_double(out, m(r, c));
    }
    out << "\n";
  }
}

Matrix read_hex_matrix(std::istream& in, const std::string& expected_tag) {
  std::string tag;
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(in >> tag >> rows >> cols) || tag != expected_tag) {
    throw std::runtime_error("model_io: expected matrix tag '" +
                             expected_tag + "'");
  }
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      m(r, c) = read_hex_double(in, expected_tag.c_str());
    }
  }
  return m;
}

void write_hex_vector(std::ostream& out, const char* tag,
                      const std::vector<double>& v) {
  out << tag << " " << v.size() << "\n";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out << " ";
    write_hex_double(out, v[i]);
  }
  out << "\n";
}

std::vector<double> read_hex_vector(std::istream& in,
                                    const std::string& expected_tag) {
  std::string tag;
  std::size_t size = 0;
  if (!(in >> tag >> size) || tag != expected_tag) {
    throw std::runtime_error("model_io: expected vector tag '" +
                             expected_tag + "'");
  }
  std::vector<double> v(size);
  for (std::size_t i = 0; i < size; ++i) {
    v[i] = read_hex_double(in, expected_tag.c_str());
  }
  return v;
}

void write_sequences(std::ostream& out, const char* tag,
                     const std::vector<hmm::ObservationSeq>& sequences) {
  out << tag << " " << sequences.size() << "\n";
  for (const hmm::ObservationSeq& seq : sequences) {
    out << seq.size();
    for (std::size_t id : seq) out << " " << id;
    out << "\n";
  }
}

std::vector<hmm::ObservationSeq> read_sequences(
    std::istream& in, const std::string& expected_tag) {
  std::string tag;
  std::size_t count = 0;
  if (!(in >> tag >> count) || tag != expected_tag) {
    throw std::runtime_error("model_io: expected sequence block '" +
                             expected_tag + "'");
  }
  std::vector<hmm::ObservationSeq> sequences(count);
  for (std::size_t s = 0; s < count; ++s) {
    std::size_t length = 0;
    if (!(in >> length)) {
      throw std::runtime_error("model_io: truncated '" + expected_tag +
                               "' block at sequence " + std::to_string(s));
    }
    sequences[s].resize(length);
    for (std::size_t t = 0; t < length; ++t) {
      if (!(in >> sequences[s][t])) {
        throw std::runtime_error("model_io: truncated sequence " +
                                 std::to_string(s) + " in '" + expected_tag +
                                 "'");
      }
    }
  }
  return sequences;
}

void write_suff_stats(std::ostream& out, const hmm::SuffStats& slot) {
  write_hex_matrix(out, "transition_num", slot.transition_num);
  write_hex_vector(out, "transition_den", slot.transition_den);
  write_hex_matrix(out, "emission_num", slot.emission_num);
  write_hex_vector(out, "emission_den", slot.emission_den);
  write_hex_vector(out, "initial", slot.initial);
}

hmm::SuffStats read_suff_stats(std::istream& in) {
  hmm::SuffStats slot;
  slot.transition_num = read_hex_matrix(in, "transition_num");
  slot.transition_den = read_hex_vector(in, "transition_den");
  slot.emission_num = read_hex_matrix(in, "emission_num");
  slot.emission_den = read_hex_vector(in, "emission_den");
  slot.initial = read_hex_vector(in, "initial");
  return slot;
}

}  // namespace

void save_trainer_state(std::ostream& out, const hmm::TrainerState& state) {
  out << kTrainerMagic << " " << kTrainerVersion << "\n";
  out << "max_iterations " << state.max_iterations << "\n";
  out << "min_improvement ";
  write_hex_double(out, state.min_improvement);
  out << "\npseudocount ";
  write_hex_double(out, state.pseudocount);
  out << "\npatience " << state.patience << "\n";
  out << "impossible_penalty ";
  write_hex_double(out, state.impossible_penalty);
  out << "\n";

  write_hex_matrix(out, "model_transition", state.initial_model.transition);
  write_hex_matrix(out, "model_emission", state.initial_model.emission);
  write_hex_vector(out, "model_initial", state.initial_model.initial);

  write_sequences(out, "train", state.train);
  write_sequences(out, "holdout", state.holdout);

  out << "batches " << state.batches.size() << "\n";
  for (const hmm::BatchRecord& batch : state.batches) {
    out << batch.id << " " << batch.train_count << " " << batch.holdout_count
        << " " << batch.iterations << " ";
    write_hex_double(out, batch.entry_train_ll);
    out << " ";
    write_hex_double(out, batch.final_train_ll);
    out << "\n";
  }

  out << "cached_count " << state.cached_count << "\n";
  out << "observed_prefix " << state.observed_prefix << "\n";
  out << "ll_sum_prefix ";
  write_hex_double(out, state.ll_sum_prefix);
  out << "\nholdout_cached " << state.holdout_cached << "\n";
  out << "holdout_ll_sum ";
  write_hex_double(out, state.holdout_ll_sum);
  out << "\nslots " << state.slot_prefix.size() << "\n";
  for (const hmm::SuffStats& slot : state.slot_prefix) {
    write_suff_stats(out, slot);
  }
}

void save_trainer_state_file(const std::string& path,
                             const hmm::TrainerState& state) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("model_io: cannot open '" + path +
                             "' for writing");
  }
  save_trainer_state(out, state);
}

hmm::TrainerState load_trainer_state(std::istream& in) {
  std::string magic;
  if (!(in >> magic) || magic != kTrainerMagic) {
    throw std::runtime_error("model_io: not a cmarkov trainer-state file");
  }
  int version = 0;
  if (!(in >> version)) {
    throw std::runtime_error("model_io: malformed trainer-state version");
  }
  if (version != kTrainerVersion) {
    throw std::runtime_error("model_io: unsupported trainer-state version " +
                             std::to_string(version));
  }

  auto expect_key = [&](const char* key) {
    std::string seen;
    if (!(in >> seen) || seen != key) {
      throw std::runtime_error(std::string("model_io: expected key '") + key +
                               "'");
    }
  };

  hmm::TrainerState state;
  expect_key("max_iterations");
  state.max_iterations = read_value<std::size_t>(in, "max_iterations");
  expect_key("min_improvement");
  state.min_improvement = read_hex_double(in, "min_improvement");
  expect_key("pseudocount");
  state.pseudocount = read_hex_double(in, "pseudocount");
  expect_key("patience");
  state.patience = read_value<std::size_t>(in, "patience");
  expect_key("impossible_penalty");
  state.impossible_penalty = read_hex_double(in, "impossible_penalty");

  state.initial_model.transition = read_hex_matrix(in, "model_transition");
  state.initial_model.emission = read_hex_matrix(in, "model_emission");
  state.initial_model.initial = read_hex_vector(in, "model_initial");

  state.train = read_sequences(in, "train");
  state.holdout = read_sequences(in, "holdout");

  expect_key("batches");
  const auto batch_count = read_value<std::size_t>(in, "batches");
  state.batches.resize(batch_count);
  for (std::size_t b = 0; b < batch_count; ++b) {
    hmm::BatchRecord& batch = state.batches[b];
    batch.id = read_value<std::size_t>(in, "batch id");
    batch.train_count = read_value<std::size_t>(in, "batch train_count");
    batch.holdout_count = read_value<std::size_t>(in, "batch holdout_count");
    batch.iterations = read_value<std::size_t>(in, "batch iterations");
    batch.entry_train_ll = read_hex_double(in, "batch entry_train_ll");
    batch.final_train_ll = read_hex_double(in, "batch final_train_ll");
  }

  expect_key("cached_count");
  state.cached_count = read_value<std::size_t>(in, "cached_count");
  expect_key("observed_prefix");
  state.observed_prefix = read_value<std::size_t>(in, "observed_prefix");
  expect_key("ll_sum_prefix");
  state.ll_sum_prefix = read_hex_double(in, "ll_sum_prefix");
  expect_key("holdout_cached");
  state.holdout_cached = read_value<std::size_t>(in, "holdout_cached");
  expect_key("holdout_ll_sum");
  state.holdout_ll_sum = read_hex_double(in, "holdout_ll_sum");

  expect_key("slots");
  const auto slot_count = read_value<std::size_t>(in, "slots");
  if (slot_count != 0 && slot_count != hmm::kTrainerMergeSlots) {
    throw std::runtime_error("model_io: trainer state must hold 0 or " +
                             std::to_string(hmm::kTrainerMergeSlots) +
                             " merge slots, found " +
                             std::to_string(slot_count));
  }
  state.slot_prefix.reserve(slot_count);
  for (std::size_t s = 0; s < slot_count; ++s) {
    state.slot_prefix.push_back(read_suff_stats(in));
  }

  state.validate();
  return state;
}

hmm::TrainerState load_trainer_state_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("model_io: cannot open '" + path + "'");
  }
  return load_trainer_state(in);
}

}  // namespace cmarkov::core
