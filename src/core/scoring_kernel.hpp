// ScoringKernel — the serve hot path's compiled model image.
//
// A trained Detector keeps its parameters in the generic representation the
// training engine wants (row-major Matrix A/B, a std::string-keyed alphabet
// map). The online scoring path has very different needs: every live
// session scores one 15-call window per event against the SAME immutable
// parameters, so the serve tier compiles the model once into a flat,
// pointer-free, cache-resident image and shares it read-only across every
// OnlineMonitor bound to that model version (ModelRegistry owns the
// shared_ptr; hot reload swaps a freshly compiled image under the same
// epoch-reclamation scheme as the detector itself).
//
// One contiguous arena allocation holds, in order:
//   - pi     : N doubles, the initial distribution;
//   - A      : N x N doubles, source-major (transition[i*N + j] = A(i, j)) —
//              the forward step iterates sources outer / destinations inner,
//              so the inner loop streams one contiguous row into N
//              independent accumulators (vectorizable, and still bit-exact:
//              each destination's sum adds its terms in ascending-i order,
//              same as the reference's per-destination dot product);
//   - B^T    : M x N doubles, emission_t[k*N + j] = B(j, k) — the emission
//              column of the observed symbol is a contiguous row, resolved
//              once per timestep via emission_col(k);
//   - slots  : open-addressing hash table (power-of-two, linear probing)
//              interning the alphabet's observation strings to dense ids —
//              find_observation() hashes "name[@caller]" piecewise, so the
//              per-event lookup builds no std::string and touches no
//              node-based map;
//   - blob   : the interned string bytes the slots point into;
//   - pruned : (top-K mode only) per-destination-state sparse predecessor
//              lists replacing near-zero transition rows entries.
//
// Scoring runs against a flat two-row scratch buffer (KernelScratch, owned
// per monitor and recycled through the serve StatePool) — no ForwardResult
// matrix, no per-window allocation. In exact mode (the default) the kernel
// performs the same floating-point operations in the same order as
// hmm::forward_scaled, so window log-likelihoods are BIT-IDENTICAL to the
// reference path (asserted by detector_test / online_monitor_test golden
// tests). Top-K pruning is opt-in and documented in DESIGN.md §"Scoring
// kernel" with its error bound; it is never enabled implicitly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "src/core/detector.hpp"

namespace cmarkov::core {

/// Compilation controls. Defaults compile the exact kernel; pruning is the
/// off-by-default speed/accuracy trade (see DESIGN.md for the bound).
struct KernelOptions {
  /// Replace each destination state's dense predecessor row with a sparse
  /// list, dropping entries <= prune_epsilon and keeping at most top_k of
  /// the rest (largest mass first; 0 = no count cap). Scored windows are
  /// then no longer bit-identical to forward_scaled.
  bool prune = false;
  double prune_epsilon = 1e-8;
  std::size_t top_k = 0;
};

/// Per-monitor forward scratch: two ping-pong alpha rows, recycled through
/// the serve StatePool with the rest of the monitor storage.
struct KernelScratch {
  std::vector<double> alpha;

  /// Grows (never shrinks) to 2*num_states and returns the base pointer.
  double* ensure(std::size_t num_states) {
    if (alpha.size() < 2 * num_states) alpha.resize(2 * num_states, 0.0);
    return alpha.data();
  }
  std::size_t capacity_bytes() const {
    return alpha.capacity() * sizeof(double);
  }
};

class ScoringKernel {
 public:
  /// Compiles the immutable image from a trained detector. Throws
  /// std::invalid_argument for untrained detectors (the serve tier never
  /// scores against one) and for nonsensical prune options.
  static std::shared_ptr<const ScoringKernel> compile(
      const Detector& detector, KernelOptions options = {});

  /// Dense observation id for a call event, or unknown_id() when the model
  /// never saw this call in this context. Equivalent to interning
  /// encode_observation(name, caller, encoding) through Alphabet::find —
  /// same ids, same unknown fallback — but hashes the parts in place
  /// without materializing the observation string.
  std::size_t find_observation(std::string_view name,
                               std::string_view caller) const;

  /// Id of a fully rendered observation string (tests, tooling).
  std::size_t find_symbol(std::string_view observation) const;

  /// The id assigned to out-of-alphabet observations: alphabet_size(), the
  /// same sentinel the Detector/Alphabet path uses, so window snapshots
  /// are interchangeable between kernel and reference scoring.
  std::size_t unknown_id() const { return alphabet_size_; }

  /// Scores one complete window against the compiled tables. Exact mode is
  /// bit-identical to Detector::score_segment (same verdict fields, same
  /// doubles); pruned mode under-estimates the likelihood within the
  /// documented bound. `scratch` is grown on demand and holds no state
  /// across calls.
  SegmentVerdict score_window(std::span<const std::size_t> window,
                              KernelScratch& scratch) const;

  std::size_t num_states() const { return num_states_; }
  std::size_t num_symbols() const { return num_symbols_; }
  std::size_t alphabet_size() const { return alphabet_size_; }
  double threshold() const { return threshold_; }
  bool context_sensitive() const { return context_sensitive_; }

  const KernelOptions& options() const { return options_; }
  bool pruned() const { return options_.prune; }
  /// Transition entries dropped by pruning (0 in exact mode).
  std::size_t pruned_entries() const { return pruned_entries_; }
  /// Largest incoming-transition probability mass pruning dropped for any
  /// destination state, D. The pruned forward pass under-estimates each
  /// step's scale by at most D (alpha is normalized and emissions are
  /// <= 1), so the per-window deficit obeys the CONDITIONAL bound
  ///   0 <= LL_exact - LL_pruned <= sum_t -log(1 - D / c_t)
  /// in the exact per-step scales c_t. No unconditional bound exists —
  /// when the dropped entries carry the dominant alpha flow of a step, c_t
  /// itself approaches D — which is why pruning is opt-in and must be
  /// validated empirically per feed (bench_score measures the worst
  /// observed deficit and verdict flips; DESIGN.md §"Scoring kernel").
  double max_dropped_mass() const { return max_dropped_mass_; }

  /// Arena footprint of the compiled image (the shared, per-model-version
  /// memory bill — deliberately NOT part of any per-session state_bytes).
  std::size_t image_bytes() const { return arena_.size() + sizeof(*this); }
  /// Wall-clock cost of compile() (feeds cmarkov_serve_kernel_build_micros).
  double build_micros() const { return build_micros_; }

 private:
  /// Open-addressing slot; empty slots have offset == kEmptySlot.
  struct Slot {
    std::uint32_t offset = 0xffffffffu;
    std::uint32_t length = 0;
    std::uint32_t id = 0;
  };
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  ScoringKernel() = default;

  const double* emission_col(std::size_t symbol) const {
    return emission_t_ + symbol * num_states_;
  }
  /// Linear-probe lookup. `joined` compares the stored string against
  /// name + '@' + caller without concatenating them.
  std::size_t probe(std::uint64_t hash, std::string_view name, bool joined,
                    std::string_view caller) const;

  std::size_t num_states_ = 0;
  std::size_t num_symbols_ = 0;
  std::size_t alphabet_size_ = 0;
  double threshold_ = 0.0;
  bool context_sensitive_ = true;
  KernelOptions options_;
  std::size_t pruned_entries_ = 0;
  double max_dropped_mass_ = 0.0;
  double build_micros_ = 0.0;

  /// The single arena allocation; every pointer below aims into it.
  std::vector<std::byte> arena_;
  const double* initial_ = nullptr;
  const double* transition_ = nullptr;
  const double* emission_t_ = nullptr;
  const Slot* slots_ = nullptr;
  std::size_t slot_mask_ = 0;
  const char* blob_ = nullptr;
  /// Pruned mode: entry ranges per destination state j are
  /// [prune_offsets_[j], prune_offsets_[j+1]) into the idx/val arrays.
  const std::uint32_t* prune_offsets_ = nullptr;
  const std::uint32_t* prune_idx_ = nullptr;
  const double* prune_val_ = nullptr;
};

}  // namespace cmarkov::core
