#include "src/util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace cmarkov {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(text.substr(start));
      return parts;
    }
    parts.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         std::isspace(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string format_probability(double value) {
  if (value == 0.0) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1e", value);
  return buf;
}

}  // namespace cmarkov
