// Unit tests for the addr2line-style Symbolizer and trace encoding.
#include <gtest/gtest.h>

#include "src/cfg/cfg_builder.hpp"
#include "src/ir/module.hpp"
#include "src/trace/interpreter.hpp"
#include "src/trace/symbolizer.hpp"

namespace cmarkov::trace {
namespace {

cfg::ModuleCfg lower(const char* source) {
  return cfg::build_module_cfg(ir::ProgramModule::from_source("t", source));
}

TEST(SymbolizerTest, ResolvesAddressesToContainingFunction) {
  const auto module = lower(R"(
fn helper() { sys("read"); }
fn main() { helper(); }
)");
  const Symbolizer symbolizer(module);
  const auto& helper = module.require("helper");
  EXPECT_EQ(symbolizer.resolve(helper.base_address),
            std::optional<std::string>("helper"));
  EXPECT_EQ(symbolizer.resolve(helper.end_address - 1),
            std::optional<std::string>("helper"));
}

TEST(SymbolizerTest, AddressesOutsideImageAreUnresolved) {
  const auto module = lower("fn main() { }");
  const Symbolizer symbolizer(module);
  EXPECT_EQ(symbolizer.resolve(0x1), std::nullopt);
  EXPECT_EQ(symbolizer.resolve(0xffffffffffull), std::nullopt);
}

TEST(SymbolizerTest, SymbolizeFillsCallers) {
  const auto module = lower(R"(
fn worker() { sys("write"); }
fn main() { sys("open"); worker(); }
)");
  const Interpreter interpreter(module);
  SeededEnvironment environment(1);
  RunResult run = interpreter.run({}, environment);
  const Symbolizer symbolizer(module);
  symbolizer.symbolize(run.trace);
  ASSERT_EQ(run.trace.events.size(), 2u);
  EXPECT_EQ(run.trace.events[0].caller, "main");
  EXPECT_EQ(run.trace.events[1].caller, "worker");
}

TEST(SymbolizerTest, GrandparentContextResolved) {
  const auto module = lower(R"(
fn inner() { sys("write"); }
fn outer() { inner(); }
fn main() { sys("open"); outer(); }
)");
  const Interpreter interpreter(module);
  SeededEnvironment environment(1);
  RunResult run = interpreter.run({}, environment);
  const Symbolizer symbolizer(module);
  symbolizer.symbolize(run.trace);
  ASSERT_EQ(run.trace.events.size(), 2u);
  // open is made from main directly: no grandparent.
  EXPECT_EQ(run.trace.events[0].caller, "main");
  EXPECT_EQ(run.trace.events[0].grandcaller, kNoGrandcaller);
  // write is made from inner, which was called from outer.
  EXPECT_EQ(run.trace.events[1].caller, "inner");
  EXPECT_EQ(run.trace.events[1].grandcaller, "outer");
}

TEST(TraceEncodingTest, DeepContextEncoding) {
  Trace trace;
  trace.events = {
      {ir::CallKind::kSyscall, "write", 0, "inner", 0, "outer"},
      {ir::CallKind::kSyscall, "open", 0, "main", 0, "-"},
  };
  hmm::Alphabet alphabet;
  const auto encoded =
      encode_trace(trace, analysis::CallFilter::kSyscalls,
                   hmm::ObservationEncoding::kDeepContext, alphabet);
  ASSERT_EQ(encoded.size(), 2u);
  EXPECT_EQ(alphabet.name(encoded[0]), "write@inner@outer");
  EXPECT_EQ(alphabet.name(encoded[1]), "open@main@-");
}

TEST(SymbolizerTest, ForgedAddressesGetUnknownCaller) {
  const auto module = lower("fn main() { }");
  const Symbolizer symbolizer(module);
  Trace trace;
  CallEvent event;
  event.kind = ir::CallKind::kSyscall;
  event.name = "execve";
  event.site_address = 0xdeadbeefcafeull;
  trace.events.push_back(event);
  symbolizer.symbolize(trace);
  EXPECT_EQ(trace.events[0].caller, kUnknownCaller);
}

TEST(SymbolizerTest, RangeOfReportsFunctionExtent) {
  const auto module = lower(R"(
fn a() { sys("x"); }
fn main() { a(); }
)");
  const Symbolizer symbolizer(module);
  const auto range = symbolizer.range_of("a");
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->first, module.require("a").base_address);
  EXPECT_EQ(symbolizer.range_of("missing"), std::nullopt);
}

TEST(TraceEncodingTest, FilterAndEncoding) {
  Trace trace;
  trace.program = "t";
  trace.events = {
      {ir::CallKind::kSyscall, "read", 0, "f"},
      {ir::CallKind::kLibcall, "malloc", 0, "g"},
      {ir::CallKind::kSyscall, "write", 0, "f"},
  };
  EXPECT_EQ(trace.count(analysis::CallFilter::kSyscalls), 2u);
  EXPECT_EQ(trace.count(analysis::CallFilter::kLibcalls), 1u);
  EXPECT_EQ(trace.count(analysis::CallFilter::kAll), 3u);

  hmm::Alphabet alphabet;
  const auto encoded =
      encode_trace(trace, analysis::CallFilter::kSyscalls,
                   hmm::ObservationEncoding::kContextSensitive, alphabet);
  ASSERT_EQ(encoded.size(), 2u);
  EXPECT_EQ(alphabet.name(encoded[0]), "read@f");
  EXPECT_EQ(alphabet.name(encoded[1]), "write@f");
}

TEST(TraceEncodingTest, ContextSensitiveRequiresSymbolizedTrace) {
  Trace trace;
  trace.events = {{ir::CallKind::kSyscall, "read", 0, ""}};
  hmm::Alphabet alphabet;
  EXPECT_THROW(
      encode_trace(trace, analysis::CallFilter::kSyscalls,
                   hmm::ObservationEncoding::kContextSensitive, alphabet),
      std::invalid_argument);
  // Context-free encoding tolerates missing callers.
  EXPECT_NO_THROW(
      encode_trace(trace, analysis::CallFilter::kSyscalls,
                   hmm::ObservationEncoding::kContextFree, alphabet));
}

TEST(TraceEncodingTest, FrozenEncodingMapsUnknownsToSentinel) {
  hmm::Alphabet alphabet;
  alphabet.intern("read@f");
  Trace trace;
  trace.events = {
      {ir::CallKind::kSyscall, "read", 0, "f"},
      {ir::CallKind::kSyscall, "read", 0, "attacker"},  // wrong context
  };
  const auto encoded =
      encode_trace_frozen(trace, analysis::CallFilter::kSyscalls,
                          hmm::ObservationEncoding::kContextSensitive,
                          alphabet, alphabet.size());
  ASSERT_EQ(encoded.size(), 2u);
  EXPECT_EQ(encoded[0], 0u);
  EXPECT_EQ(encoded[1], alphabet.size());  // sentinel
  EXPECT_EQ(alphabet.size(), 1u);          // not extended
}

}  // namespace
}  // namespace cmarkov::trace
