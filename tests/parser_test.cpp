// Unit tests for the MiniC parser: grammar coverage, precedence, round-trip
// through to_source, and error reporting.
#include <gtest/gtest.h>

#include "src/ir/lexer.hpp"
#include "src/ir/parser.hpp"

namespace cmarkov::ir {
namespace {

const Function& single_function(const Program& program) {
  EXPECT_EQ(program.functions.size(), 1u);
  return program.functions.front();
}

TEST(ParserTest, EmptyProgram) {
  const Program program = parse_program("");
  EXPECT_TRUE(program.functions.empty());
}

TEST(ParserTest, FunctionHeaderAndParams) {
  const Program program = parse_program("fn add(a, b) { return a + b; }");
  const Function& fn = single_function(program);
  EXPECT_EQ(fn.name, "add");
  ASSERT_EQ(fn.params.size(), 2u);
  EXPECT_EQ(fn.params[0], "a");
  EXPECT_EQ(fn.params[1], "b");
}

TEST(ParserTest, StatementKinds) {
  const Program program = parse_program(R"(
fn main() {
  var x;
  var y = 3;
  y = y + 1;
  if (y > 2) { y = 0; } else { y = 1; }
  while (y < 5) { y = y + 1; }
  sys("write");
  return y;
}
)");
  const Function& fn = single_function(program);
  ASSERT_EQ(fn.body.statements.size(), 7u);
  EXPECT_TRUE(std::holds_alternative<VarDeclStmt>(fn.body.statements[0]->node));
  EXPECT_TRUE(std::holds_alternative<VarDeclStmt>(fn.body.statements[1]->node));
  EXPECT_TRUE(std::holds_alternative<AssignStmt>(fn.body.statements[2]->node));
  EXPECT_TRUE(std::holds_alternative<IfStmt>(fn.body.statements[3]->node));
  EXPECT_TRUE(std::holds_alternative<WhileStmt>(fn.body.statements[4]->node));
  EXPECT_TRUE(std::holds_alternative<ExprStmt>(fn.body.statements[5]->node));
  EXPECT_TRUE(std::holds_alternative<ReturnStmt>(fn.body.statements[6]->node));
}

TEST(ParserTest, PrecedenceMulOverAdd) {
  const Program program = parse_program("fn main() { return 1 + 2 * 3; }");
  const auto& ret = std::get<ReturnStmt>(
      single_function(program).body.statements[0]->node);
  const auto& add = std::get<BinaryExpr>(ret.value->node);
  EXPECT_EQ(add.op, BinaryOp::kAdd);
  const auto& mul = std::get<BinaryExpr>(add.rhs->node);
  EXPECT_EQ(mul.op, BinaryOp::kMul);
}

TEST(ParserTest, PrecedenceComparisonOverLogical) {
  const Program program =
      parse_program("fn main() { return 1 < 2 && 3 > 2 || 0 == 1; }");
  const auto& ret = std::get<ReturnStmt>(
      single_function(program).body.statements[0]->node);
  const auto& top = std::get<BinaryExpr>(ret.value->node);
  EXPECT_EQ(top.op, BinaryOp::kOr);
  const auto& lhs = std::get<BinaryExpr>(top.lhs->node);
  EXPECT_EQ(lhs.op, BinaryOp::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const Program program = parse_program("fn main() { return (1 + 2) * 3; }");
  const auto& ret = std::get<ReturnStmt>(
      single_function(program).body.statements[0]->node);
  const auto& mul = std::get<BinaryExpr>(ret.value->node);
  EXPECT_EQ(mul.op, BinaryOp::kMul);
  EXPECT_EQ(std::get<BinaryExpr>(mul.lhs->node).op, BinaryOp::kAdd);
}

TEST(ParserTest, UnaryOperatorsNest) {
  const Program program = parse_program("fn main() { return - - 1 + !0; }");
  const auto& ret = std::get<ReturnStmt>(
      single_function(program).body.statements[0]->node);
  const auto& add = std::get<BinaryExpr>(ret.value->node);
  const auto& neg = std::get<UnaryExpr>(add.lhs->node);
  EXPECT_EQ(neg.op, UnaryOp::kNeg);
  EXPECT_TRUE(std::holds_alternative<UnaryExpr>(neg.operand->node));
  EXPECT_EQ(std::get<UnaryExpr>(add.rhs->node).op, UnaryOp::kNot);
}

TEST(ParserTest, ExternalCallsWithKindAndArgs) {
  const Program program =
      parse_program("fn main() { var x = sys(\"read\", 1, 2); lib(\"malloc\"); }");
  const Function& fn = single_function(program);
  const auto& decl = std::get<VarDeclStmt>(fn.body.statements[0]->node);
  const auto& call = std::get<ExternalCallExpr>(decl.init->node);
  EXPECT_EQ(call.kind, CallKind::kSyscall);
  EXPECT_EQ(call.name, "read");
  EXPECT_EQ(call.args.size(), 2u);
  const auto& stmt = std::get<ExprStmt>(fn.body.statements[1]->node);
  const auto& lib = std::get<ExternalCallExpr>(stmt.expr->node);
  EXPECT_EQ(lib.kind, CallKind::kLibcall);
  EXPECT_EQ(lib.name, "malloc");
}

TEST(ParserTest, InternalCallVsVariableReference) {
  const Program program =
      parse_program("fn main() { var x = helper(1); var y = x; }");
  const Function& fn = single_function(program);
  const auto& decl0 = std::get<VarDeclStmt>(fn.body.statements[0]->node);
  EXPECT_TRUE(std::holds_alternative<InternalCallExpr>(decl0.init->node));
  const auto& decl1 = std::get<VarDeclStmt>(fn.body.statements[1]->node);
  EXPECT_TRUE(std::holds_alternative<VarRef>(decl1.init->node));
}

TEST(ParserTest, InputExpression) {
  const Program program = parse_program("fn main() { var x = input(); }");
  const auto& decl = std::get<VarDeclStmt>(
      single_function(program).body.statements[0]->node);
  EXPECT_TRUE(std::holds_alternative<InputExpr>(decl.init->node));
}

TEST(ParserTest, ElseIsOptional) {
  const Program program =
      parse_program("fn main() { if (1) { return; } return; }");
  const auto& if_stmt = std::get<IfStmt>(
      single_function(program).body.statements[0]->node);
  EXPECT_FALSE(if_stmt.else_block.has_value());
}

TEST(ParserTest, BareReturn) {
  const Program program = parse_program("fn main() { return; }");
  const auto& ret = std::get<ReturnStmt>(
      single_function(program).body.statements[0]->node);
  EXPECT_EQ(ret.value, nullptr);
}

TEST(ParserTest, RoundTripThroughToSource) {
  const char* source = R"(
fn helper(n) {
  var total = 0;
  while (n > 0) {
    total = total + sys("read");
    n = n - 1;
  }
  return total;
}
fn main() {
  var x = input();
  if (x % 2 == 0) {
    helper(x);
  } else {
    lib("printf");
  }
}
)";
  const Program first = parse_program(source);
  const std::string printed = to_source(first);
  const Program second = parse_program(printed);
  EXPECT_EQ(to_source(second), printed);
}

TEST(ParserTest, ErrorMissingSemicolon) {
  EXPECT_THROW(parse_program("fn main() { var x = 1 }"), SyntaxError);
}

TEST(ParserTest, ErrorUnterminatedBlock) {
  EXPECT_THROW(parse_program("fn main() { if (1) { return; }"), SyntaxError);
}

TEST(ParserTest, ErrorGarbageTopLevel) {
  EXPECT_THROW(parse_program("var x = 1;"), SyntaxError);
}

TEST(ParserTest, ErrorExternalCallNeedsStringName) {
  EXPECT_THROW(parse_program("fn main() { sys(read); }"), SyntaxError);
}

TEST(ParserTest, CloneProducesDeepEqualTree) {
  const Program program = parse_program(
      "fn main() { var x = 1 + input(); if (x) { sys(\"a\"); } }");
  const Function& fn = single_function(program);
  const StmtPtr copy = clone(*fn.body.statements[1]);
  // Mutating the clone must not affect the original (deep copy).
  auto& cloned_if = std::get<IfStmt>(copy->node);
  cloned_if.then_block.statements.clear();
  const auto& original_if = std::get<IfStmt>(fn.body.statements[1]->node);
  EXPECT_EQ(original_if.then_block.statements.size(), 1u);
}

}  // namespace
}  // namespace cmarkov::ir
