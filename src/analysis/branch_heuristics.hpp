// Branch-probability heuristics for Definition 2 (conditional probability of
// adjacent CFG nodes). The paper's prototype uses a uniform distribution at
// branch points and notes that branch-prediction heuristics can be plugged
// in; BranchHeuristic is that plug-in point (exercised by the ablation
// bench).
#pragma once

#include <memory>
#include <string>

#include "src/cfg/cfg.hpp"

namespace cmarkov::analysis {

/// Strategy for distributing probability across a 2-way branch.
class BranchHeuristic {
 public:
  virtual ~BranchHeuristic() = default;

  /// Probability that the branch in `block` (which must have a BranchTerm)
  /// takes its true edge; the false edge gets the complement. `is_loop`
  /// tells whether the true edge enters a loop body (the block's branch is a
  /// loop header test).
  virtual double taken_probability(const cfg::FunctionCfg& cfg,
                                   const cfg::BasicBlock& block,
                                   bool true_edge_enters_loop) const = 0;

  virtual std::string name() const = 0;
};

/// Paper default: both branch edges get 0.5.
class UniformBranchHeuristic final : public BranchHeuristic {
 public:
  double taken_probability(const cfg::FunctionCfg&, const cfg::BasicBlock&,
                           bool) const override {
    return 0.5;
  }
  std::string name() const override { return "uniform"; }
};

/// Loop-aware bias (a Ball-Larus-style heuristic): the edge that enters a
/// loop body is taken with `loop_probability`, other branches stay uniform.
class LoopBiasedBranchHeuristic final : public BranchHeuristic {
 public:
  explicit LoopBiasedBranchHeuristic(double loop_probability = 0.8);

  double taken_probability(const cfg::FunctionCfg& cfg,
                           const cfg::BasicBlock& block,
                           bool true_edge_enters_loop) const override;
  std::string name() const override { return "loop-biased"; }

 private:
  double loop_probability_;
};

std::unique_ptr<BranchHeuristic> make_uniform_heuristic();
std::unique_ptr<BranchHeuristic> make_loop_biased_heuristic(
    double loop_probability = 0.8);

}  // namespace cmarkov::analysis
