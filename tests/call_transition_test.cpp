// Unit tests for Definitions 4/5 and Equation 2: per-function
// call-transition matrices, including virtual ENTRY/EXIT rows, call
// filtering and loop handling.
#include <gtest/gtest.h>

#include "src/analysis/call_transition.hpp"
#include "src/cfg/cfg_builder.hpp"
#include "src/ir/module.hpp"

namespace cmarkov::analysis {
namespace {

CallTransitionMatrix matrix_of(const char* source,
                               FunctionMatrixOptions options = {},
                               const char* function = "main") {
  const auto module =
      cfg::build_module_cfg(ir::ProgramModule::from_source("t", source));
  static const UniformBranchHeuristic heuristic;
  return function_call_transitions(module.require(function), heuristic,
                                   options);
}

CallSymbol sys_at(const std::string& name, const std::string& fn) {
  return CallSymbol::external(ir::CallKind::kSyscall, name, fn);
}

TEST(CallTransitionTest, StraightLineSequence) {
  const auto m = matrix_of("fn main() { sys(\"a\"); sys(\"b\"); }");
  const auto entry = CallSymbol::entry("main");
  const auto exit = CallSymbol::exit("main");
  EXPECT_DOUBLE_EQ(m.prob(entry, sys_at("a", "main")), 1.0);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("a", "main"), sys_at("b", "main")), 1.0);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("b", "main"), exit), 1.0);
}

TEST(CallTransitionTest, EmptyFunctionIsPassThrough) {
  const auto m = matrix_of("fn main() { var x = 1; }");
  EXPECT_DOUBLE_EQ(m.prob(CallSymbol::entry("main"), CallSymbol::exit("main")),
                   1.0);
  EXPECT_TRUE(m.external_indices().empty());
}

TEST(CallTransitionTest, BranchWeightsTransitions) {
  const auto m = matrix_of(R"(
fn main() {
  if (input()) { sys("a"); } else { sys("b"); }
  sys("c");
}
)");
  const auto entry = CallSymbol::entry("main");
  EXPECT_DOUBLE_EQ(m.prob(entry, sys_at("a", "main")), 0.5);
  EXPECT_DOUBLE_EQ(m.prob(entry, sys_at("b", "main")), 0.5);
  // Equation 2: P^r(a) * P[next=c] = 0.5 * 1.
  EXPECT_DOUBLE_EQ(m.prob(sys_at("a", "main"), sys_at("c", "main")), 0.5);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("b", "main"), sys_at("c", "main")), 0.5);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("c", "main"), CallSymbol::exit("main")),
                   1.0);
}

TEST(CallTransitionTest, SkipsNonCallNodesOnPath) {
  // Arithmetic between the calls must not break the transition.
  const auto m = matrix_of(R"(
fn main() {
  sys("a");
  var x = 1 + 2 * 3;
  x = x - 1;
  sys("b");
}
)");
  EXPECT_DOUBLE_EQ(m.prob(sys_at("a", "main"), sys_at("b", "main")), 1.0);
}

TEST(CallTransitionTest, SameNamedCallsMergeIntoOneSymbol) {
  const auto m = matrix_of(R"(
fn main() {
  sys("dup");
  sys("dup");
  sys("end");
}
)");
  // One symbol for both dup calls; self-transition dup->dup recorded.
  EXPECT_DOUBLE_EQ(m.prob(sys_at("dup", "main"), sys_at("dup", "main")), 1.0);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("dup", "main"), sys_at("end", "main")), 1.0);
}

TEST(CallTransitionTest, SyscallFilterIgnoresLibcalls) {
  FunctionMatrixOptions options;
  options.filter = CallFilter::kSyscalls;
  const auto m = matrix_of(R"(
fn main() {
  sys("a");
  lib("noise");
  lib("noise2");
  sys("b");
}
)",
                           options);
  // Libcalls are transparent under the syscall filter.
  EXPECT_DOUBLE_EQ(m.prob(sys_at("a", "main"), sys_at("b", "main")), 1.0);
  EXPECT_EQ(m.external_indices().size(), 2u);
}

TEST(CallTransitionTest, LibcallFilterSymmetrically) {
  FunctionMatrixOptions options;
  options.filter = CallFilter::kLibcalls;
  const auto m = matrix_of(R"(
fn main() {
  sys("noise");
  lib("x");
  lib("y");
}
)",
                           options);
  const auto lib_x =
      CallSymbol::external(ir::CallKind::kLibcall, "x", "main");
  const auto lib_y =
      CallSymbol::external(ir::CallKind::kLibcall, "y", "main");
  EXPECT_DOUBLE_EQ(m.prob(CallSymbol::entry("main"), lib_x), 1.0);
  EXPECT_DOUBLE_EQ(m.prob(lib_x, lib_y), 1.0);
}

TEST(CallTransitionTest, InternalCallsBecomePlaceholderSymbols) {
  const auto m = matrix_of(R"(
fn helper() { sys("h"); }
fn main() { sys("a"); helper(); sys("b"); }
)");
  const auto site = CallSymbol::internal("helper");
  ASSERT_TRUE(m.contains(site));
  EXPECT_DOUBLE_EQ(m.prob(sys_at("a", "main"), site), 1.0);
  EXPECT_DOUBLE_EQ(m.prob(site, sys_at("b", "main")), 1.0);
}

TEST(CallTransitionTest, AcyclicCutDropsLoopRepeatMass) {
  FunctionMatrixOptions options;
  options.mode = PropagationMode::kAcyclicCut;
  const auto m = matrix_of(R"(
fn main() {
  var n = input();
  while (n > 0) { sys("body"); n = n - 1; }
  sys("after");
}
)",
                           options);
  // The body's only successor path returns via the back edge, which is
  // cut: no body->body or body->after transition statically.
  EXPECT_DOUBLE_EQ(m.prob(sys_at("body", "main"), sys_at("body", "main")),
                   0.0);
  EXPECT_DOUBLE_EQ(m.prob(sys_at("body", "main"), sys_at("after", "main")),
                   0.0);
  EXPECT_DOUBLE_EQ(m.prob(CallSymbol::entry("main"), sys_at("body", "main")),
                   0.5);
}

TEST(CallTransitionTest, FixpointModeCapturesLoopTransitions) {
  FunctionMatrixOptions options;
  options.mode = PropagationMode::kIterativeFixpoint;
  const auto m = matrix_of(R"(
fn main() {
  var n = input();
  while (n > 0) { sys("body"); n = n - 1; }
  sys("after");
}
)",
                           options);
  // Expected visits of body = 1; from body the header re-enters with 0.5
  // and exits with 0.5.
  EXPECT_NEAR(m.prob(sys_at("body", "main"), sys_at("body", "main")), 0.5,
              1e-9);
  EXPECT_NEAR(m.prob(sys_at("body", "main"), sys_at("after", "main")), 0.5,
              1e-9);
  EXPECT_NEAR(m.prob(sys_at("after", "main"), CallSymbol::exit("main")), 1.0,
              1e-9);
}

TEST(CallTransitionTest, EntryRowSumsToOne) {
  const auto m = matrix_of(R"(
fn main() {
  if (input()) { sys("a"); } else { if (input()) { sys("b"); } }
}
)");
  const std::size_t entry = m.index_of(CallSymbol::entry("main"));
  EXPECT_NEAR(m.row_sum(entry), 1.0, 1e-12);
}

TEST(CallTransitionTest, UnreachableCallRegisteredWithZeroMass) {
  const auto m = matrix_of("fn main() { return; sys(\"dead\"); }");
  ASSERT_TRUE(m.contains(sys_at("dead", "main")));
  EXPECT_DOUBLE_EQ(m.row_sum(m.index_of(sys_at("dead", "main"))), 0.0);
}

}  // namespace
}  // namespace cmarkov::analysis
