// Definition 2: the conditional probability P[n_j | n_i] of each CFG edge.
// Jump edges get 1.0; branch edges are split by the BranchHeuristic
// (uniform 0.5/0.5 in the paper's prototype).
#pragma once

#include <utility>
#include <vector>

#include "src/analysis/branch_heuristics.hpp"
#include "src/cfg/cfg.hpp"

namespace cmarkov::analysis {

/// Edge probabilities of one function: outgoing[i] lists (successor,
/// probability) pairs of block i, summing to 1 for non-return blocks.
struct EdgeProbabilities {
  std::vector<std::vector<std::pair<cfg::BlockId, double>>> outgoing;

  /// Probability of a specific edge (0 when the edge does not exist).
  double edge(cfg::BlockId from, cfg::BlockId to) const;
};

/// Computes conditional probabilities for every edge of `cfg`, including
/// back edges (downstream passes decide how to treat cycles).
EdgeProbabilities conditional_probabilities(const cfg::FunctionCfg& cfg,
                                            const BranchHeuristic& heuristic);

/// True if `target` can flow back to `from` (used to detect loop-entering
/// branch edges for heuristics).
bool can_reach(const cfg::FunctionCfg& cfg, cfg::BlockId source,
               cfg::BlockId destination);

}  // namespace cmarkov::analysis
