// Semantic checking for MiniC programs: declaration-before-use, duplicate
// definitions, callee existence and arity. Running this before CFG lowering
// lets the rest of the pipeline assume a well-formed program.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "src/ir/ast.hpp"

namespace cmarkov::ir {

/// Error carrying all semantic diagnostics found in a program.
class SemaError : public std::runtime_error {
 public:
  explicit SemaError(std::vector<std::string> diagnostics);

  const std::vector<std::string>& diagnostics() const { return diagnostics_; }

 private:
  std::vector<std::string> diagnostics_;
};

/// Checks the whole program. Returns the list of diagnostics (empty when the
/// program is well-formed). Rules:
///  - function names are unique
///  - a function named `entry_point` exists (default "main") and takes no
///    parameters
///  - internal calls target defined functions with matching arity
///  - variables are declared (param or `var`) before use, no redeclaration
///    within a function (MiniC variables are function-scoped)
std::vector<std::string> check_program(const Program& program,
                                       const std::string& entry_point = "main");

/// Like check_program but throws SemaError when any diagnostic is produced.
void require_valid(const Program& program,
                   const std::string& entry_point = "main");

}  // namespace cmarkov::ir
