#include "src/reduction/cluster_calls.hpp"

#include <algorithm>

#include "src/obs/metrics_registry.hpp"
#include "src/obs/run_profile.hpp"

namespace cmarkov::reduction {

namespace {

CallClustering singleton_clustering(CallVectors vectors) {
  CallClustering out;
  out.calls = std::move(vectors.calls);
  out.assignment.resize(out.calls.size());
  out.clusters.resize(out.calls.size());
  for (std::size_t i = 0; i < out.calls.size(); ++i) {
    out.assignment[i] = i;
    out.clusters[i] = {i};
  }
  out.reduced = false;
  return out;
}

}  // namespace

CallClustering identity_clustering(
    const analysis::CallTransitionMatrix& matrix) {
  return singleton_clustering(build_call_vectors(matrix));
}

CallClustering cluster_calls(const analysis::CallTransitionMatrix& matrix,
                             Rng& rng, const ClusteringOptions& options) {
  CallVectors vectors = build_call_vectors(matrix);
  const std::size_t n = vectors.calls.size();

  std::size_t k = options.k;
  if (k == 0) {
    k = static_cast<std::size_t>(
        static_cast<double>(n) * options.target_fraction);
  }
  k = std::clamp<std::size_t>(k, 1, n == 0 ? 1 : n);

  if (n == 0 || n <= options.min_calls_for_reduction || k >= n) {
    return singleton_clustering(std::move(vectors));
  }

  CallClustering out;
  out.calls = std::move(vectors.calls);

  obs::RunProfile* profile = options.exec.profile;

  Matrix features = std::move(vectors.features);
  if (options.use_pca && features.rows() >= 2) {
    PcaOptions pca_options = options.pca;
    pca_options.exec.adopt_runtime(options.exec);
    Pca pca;
    {
      const obs::ScopedTimer timer(profile, "pca-fit");
      pca = Pca::fit(features, pca_options);
    }
    {
      const obs::ScopedTimer timer(profile, "pca-transform");
      features = pca.transform(features, options.exec.threads);
    }
    out.pca_dimensions = features.cols();
  }

  // Paper-scale inputs (the N > 800 regime this reduction exists for) make
  // multi-restart 100-iteration Lloyd's a multi-second affair; cap the
  // search there — with PCA'd features the first run converges quickly.
  KMeansOptions kmeans_options = options.kmeans;
  kmeans_options.exec.adopt_runtime(options.exec);
  if (n > 500) {
    kmeans_options.restarts = 1;
    kmeans_options.max_iterations =
        std::min<std::size_t>(kmeans_options.max_iterations, 35);
  }
  KMeansResult result;
  {
    const obs::ScopedTimer timer(profile, "kmeans");
    result = kmeans(features, k, rng, kmeans_options);
  }
  out.assignment = result.assignment;
  out.clusters.resize(k);
  for (std::size_t i = 0; i < out.assignment.size(); ++i) {
    out.clusters[out.assignment[i]].push_back(i);
  }
  // Drop empty clusters (kmeans guarantees non-empty, but keep this robust
  // to future clustering backends) and compact ids.
  std::vector<std::vector<std::size_t>> compact;
  std::vector<std::size_t> new_id(k, 0);
  for (std::size_t c = 0; c < k; ++c) {
    if (out.clusters[c].empty()) continue;
    new_id[c] = compact.size();
    compact.push_back(std::move(out.clusters[c]));
  }
  for (auto& a : out.assignment) a = new_id[a];
  out.clusters = std::move(compact);
  out.reduced = true;
  if (options.exec.metrics != nullptr) {
    auto& m = *options.exec.metrics;
    m.counter("cmarkov_reduce_runs_total").add(1);
    m.gauge("cmarkov_reduce_input_calls").set(static_cast<double>(n));
    m.gauge("cmarkov_reduce_clusters")
        .set(static_cast<double>(out.clusters.size()));
  }
  return out;
}

}  // namespace cmarkov::reduction
