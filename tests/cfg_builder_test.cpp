// Unit tests for AST -> CFG lowering: block structure, call splitting,
// terminators, address assignment, register wiring.
#include <gtest/gtest.h>

#include "src/cfg/cfg_builder.hpp"
#include "src/ir/module.hpp"

namespace cmarkov::cfg {
namespace {

ModuleCfg lower(const char* source) {
  return build_module_cfg(ir::ProgramModule::from_source("test", source));
}

std::size_t count_external_calls(const FunctionCfg& fn) {
  std::size_t count = 0;
  for (const auto& block : fn.blocks) {
    if (block.external_call() != nullptr) ++count;
  }
  return count;
}

TEST(CfgBuilderTest, StraightLineSingleReturnBlock) {
  const ModuleCfg module = lower("fn main() { var x = 1 + 2; }");
  const FunctionCfg& fn = module.require("main");
  // Straight-line code without calls stays in the entry block.
  const auto& entry = fn.block(fn.entry);
  EXPECT_TRUE(std::holds_alternative<ReturnTerm>(entry.terminator));
  EXPECT_FALSE(entry.makes_call());
}

TEST(CfgBuilderTest, CallSplitsBlock) {
  const ModuleCfg module =
      lower("fn main() { sys(\"read\"); sys(\"write\"); }");
  const FunctionCfg& fn = module.require("main");
  EXPECT_EQ(count_external_calls(fn), 2u);
  // Each call block holds at most one call and ends in a jump.
  for (const auto& block : fn.blocks) {
    std::size_t calls = 0;
    for (const auto& instr : block.instructions) {
      if (std::holds_alternative<ExternalCallInstr>(instr) ||
          std::holds_alternative<InternalCallInstr>(instr)) {
        ++calls;
      }
    }
    EXPECT_LE(calls, 1u);
    if (calls == 1) {
      EXPECT_TRUE(std::holds_alternative<JumpTerm>(block.terminator));
    }
  }
}

TEST(CfgBuilderTest, IfElseProducesDiamond) {
  const ModuleCfg module = lower(R"(
fn main() {
  var x = input();
  if (x > 0) { x = 1; } else { x = 2; }
  x = 3;
}
)");
  const FunctionCfg& fn = module.require("main");
  const auto& entry = fn.block(fn.entry);
  const auto* branch = std::get_if<BranchTerm>(&entry.terminator);
  ASSERT_NE(branch, nullptr);
  EXPECT_NE(branch->if_true, branch->if_false);
  // Both arms jump to the same merge block.
  const auto& then_block = fn.block(branch->if_true);
  const auto& else_block = fn.block(branch->if_false);
  const auto* then_jump = std::get_if<JumpTerm>(&then_block.terminator);
  const auto* else_jump = std::get_if<JumpTerm>(&else_block.terminator);
  ASSERT_NE(then_jump, nullptr);
  ASSERT_NE(else_jump, nullptr);
  EXPECT_EQ(then_jump->target, else_jump->target);
}

TEST(CfgBuilderTest, WhileProducesBackEdge) {
  const ModuleCfg module = lower(R"(
fn main() {
  var n = input();
  while (n > 0) { n = n - 1; }
}
)");
  const FunctionCfg& fn = module.require("main");
  const auto backs = fn.back_edges();
  ASSERT_EQ(backs.size(), 1u);
  // The back edge returns to the condition-evaluation (header) block.
  const auto& header = fn.block(backs[0].second);
  EXPECT_TRUE(std::holds_alternative<BranchTerm>(header.terminator));
}

TEST(CfgBuilderTest, NestedLoopsProduceTwoBackEdges) {
  const ModuleCfg module = lower(R"(
fn main() {
  var i = input();
  while (i > 0) {
    var j = input();
    while (j > 0) { j = j - 1; }
    i = i - 1;
  }
}
)");
  EXPECT_EQ(module.require("main").back_edges().size(), 2u);
}

TEST(CfgBuilderTest, CodeAfterReturnIsUnreachable) {
  const ModuleCfg module = lower("fn main() { return; sys(\"never\"); }");
  const FunctionCfg& fn = module.require("main");
  // The unreachable call exists but is not in the reverse post order.
  EXPECT_EQ(count_external_calls(fn), 1u);
  const auto rpo = fn.reverse_post_order();
  for (BlockId id : rpo) {
    EXPECT_EQ(fn.block(id).external_call(), nullptr);
  }
}

TEST(CfgBuilderTest, FunctionsGetDisjointAddressRanges) {
  const ModuleCfg module = lower(R"(
fn a() { sys("x"); }
fn b() { sys("y"); }
fn main() { a(); b(); }
)");
  const FunctionCfg& a = module.require("a");
  const FunctionCfg& b = module.require("b");
  EXPECT_LT(a.base_address, a.end_address);
  EXPECT_LE(a.end_address, b.base_address);
  EXPECT_LT(b.base_address, b.end_address);
}

TEST(CfgBuilderTest, CallAddressesLieWithinTheirFunction) {
  const ModuleCfg module = lower(R"(
fn helper() { sys("read"); lib("malloc"); }
fn main() { helper(); }
)");
  const FunctionCfg& helper = module.require("helper");
  for (const auto& block : helper.blocks) {
    if (const auto* call = block.external_call()) {
      EXPECT_GE(call->address, helper.base_address);
      EXPECT_LT(call->address, helper.end_address);
    }
  }
}

TEST(CfgBuilderTest, SiteIdsAreUniqueAcrossModule) {
  const ModuleCfg module = lower(R"(
fn f() { sys("a"); sys("a"); }
fn main() { f(); sys("a"); }
)");
  std::set<std::uint32_t> ids;
  std::size_t sites = 0;
  for (const auto& fn : module.functions) {
    for (const auto& block : fn.blocks) {
      if (const auto* call = block.external_call()) {
        ids.insert(call->site_id);
        ++sites;
      }
      if (const auto* call = block.internal_call()) {
        ids.insert(call->site_id);
        ++sites;
      }
    }
  }
  EXPECT_EQ(ids.size(), sites);
}

TEST(CfgBuilderTest, ParamsOccupyLeadingRegisters) {
  const ModuleCfg module =
      lower("fn f(a, b) { return a + b; } fn main() { f(1, 2); }");
  const FunctionCfg& f = module.require("f");
  EXPECT_EQ(f.params.size(), 2u);
  EXPECT_GE(f.num_registers, 2u);
}

TEST(CfgBuilderTest, CallInLoopConditionSplitsHeader) {
  const ModuleCfg module = lower(R"(
fn main() {
  while (sys("read") > 0) { lib("work"); }
}
)");
  const FunctionCfg& fn = module.require("main");
  // Loop still has a back edge and both calls exist.
  EXPECT_GE(fn.back_edges().size(), 1u);
  EXPECT_EQ(count_external_calls(fn), 2u);
}

TEST(CfgBuilderTest, SourceLinesCollected) {
  const ModuleCfg module = lower("fn main() {\n  var x = 1;\n  x = 2;\n}");
  const auto lines = module.require("main").source_lines();
  EXPECT_GE(lines.size(), 2u);
}

TEST(CfgBuilderTest, ReversePostOrderStartsAtEntry) {
  const ModuleCfg module = lower(R"(
fn main() {
  if (input()) { sys("a"); } else { sys("b"); }
  sys("c");
}
)");
  const FunctionCfg& fn = module.require("main");
  const auto rpo = fn.reverse_post_order();
  ASSERT_FALSE(rpo.empty());
  EXPECT_EQ(rpo.front(), fn.entry);
  // RPO visits every reachable block exactly once.
  std::set<BlockId> distinct(rpo.begin(), rpo.end());
  EXPECT_EQ(distinct.size(), rpo.size());
}

}  // namespace
}  // namespace cmarkov::cfg
