// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic component in the library (workload generation, random HMM
// initialization, K-means seeding, attack synthesis) draws from an explicit
// Rng instance instead of global state, so a fixed seed reproduces an entire
// experiment bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace cmarkov {

/// Deterministic random source. Thin wrapper over std::mt19937_64 with the
/// distribution helpers the library needs. Copyable (copying forks the
/// stream state).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform real in [0, 1).
  double uniform();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability p in [0, 1].
  bool chance(double p);

  /// Standard normal draw scaled to mean/stddev.
  double gaussian(double mean = 0.0, double stddev = 1.0);

  /// Geometric-ish session length: at least `min_len`, expected
  /// `min_len + mean_extra`.
  std::size_t session_length(std::size_t min_len, double mean_extra);

  /// Samples an index from an unnormalized non-negative weight vector.
  /// Throws std::invalid_argument if all weights are zero or the span is
  /// empty.
  std::size_t weighted_index(std::span<const double> weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[index(i)]);
    }
  }

  /// Picks one element uniformly. Requires non-empty.
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty vector");
    return items[index(items.size())];
  }

  /// Derives an independent child stream; used to give each test case or
  /// fold its own substream so reordering experiments does not perturb
  /// unrelated draws.
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cmarkov
