// The cmarkovd binary frame protocol ("CMKB"): length-prefixed, versioned
// frames carrying the same conversation as the text line protocol, built
// for the epoll front-end's hot path. The text protocol costs one
// read/parse/reply round trip per event; a CMKB event-batch frame carries
// hundreds of events and takes one ack — that is where the batching win
// comes from. The text protocol stays available on the same port for
// debugging and replay (the server sniffs the first bytes of each
// connection: frames start with the "CMKB" magic, text does not).
//
// Wire layout (all integers little-endian):
//
//   header (12 bytes):
//     u32 magic        "CMKB" = 0x424B4D43
//     u8  version      1
//     u8  op           see FrameOp
//     u16 flags        see FrameFlags
//     u32 payload_len  bytes following the header, <= kMaxPayload
//
//   payload by op (client -> server):
//     kHello       str model, str session (empty = server assigns),
//                  str trace_id (empty = none)
//     kEventBatch  u32 count, then per event:
//                    u8 kind (0 = syscall, 1 = libcall), str site,
//                    str callee
//     kStats       (empty)
//     kMetrics     (empty)
//     kTrace       u32 n
//     kEvict       (empty)
//     kBye         (empty)
//
//   payload (server -> client):
//     kReply       UTF-8 text, exactly the line the text protocol would
//                  have answered (for kEventBatch: one summary line
//                  "OK n=<accepted> dropped=<d> rejected=<r>")
//     kError       UTF-8 reason; the server closes the connection after
//                  a framing-level error frame
//
//   `str` is u16 length + that many bytes (no terminator).
//
// Framing errors (bad magic, unsupported version, oversized or truncated
// payloads, malformed strings) are protocol violations: the parser reports
// a loud model_io-style message, the server answers one kError frame and
// drops the connection. serve_net_test drives a table of hostile frames
// through this parser — reject, account, never crash.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/trace/event.hpp"

namespace cmarkov::serve::net {

inline constexpr std::uint32_t kFrameMagic = 0x424B4D43u;  // "CMKB"
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 12;
/// Upper bound on payload_len; anything larger is a protocol violation
/// (a hostile length would otherwise make the server buffer gigabytes).
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class FrameOp : std::uint8_t {
  kHello = 1,
  kEventBatch = 2,
  kStats = 3,
  kMetrics = 4,
  kTrace = 5,
  kEvict = 6,
  kBye = 7,
  // Server -> client.
  kReply = 0x80,
  kError = 0xFF,
};

enum FrameFlags : std::uint16_t {
  /// Event batches only: the client does not want the summary ack.
  kFlagNoReply = 1u << 0,
};

/// One complete decoded frame (header + raw payload bytes).
struct Frame {
  FrameOp op = FrameOp::kError;
  std::uint16_t flags = 0;
  std::string payload;
};

/// Serializes a frame (header + payload). The inverse of FrameParser.
std::string encode_frame(FrameOp op, std::uint16_t flags,
                         std::string_view payload);

// -- Payload builders (client side; benches and tests use these too) ------

std::string encode_hello_payload(std::string_view model,
                                 std::string_view session,
                                 std::string_view trace_id);
std::string encode_event_batch_payload(
    const std::vector<trace::CallEvent>& events);
std::string encode_trace_payload(std::uint32_t n);

// -- Payload decoders (server side) ---------------------------------------

struct HelloRequest {
  std::string model;
  std::string session;   ///< empty: server assigns an id
  std::string trace_id;  ///< empty: no default trace id
};

/// Throws std::runtime_error ("frame: ...") on malformed payloads.
HelloRequest decode_hello_payload(std::string_view payload);
std::vector<trace::CallEvent> decode_event_batch_payload(
    std::string_view payload);
std::uint32_t decode_trace_payload(std::string_view payload);

/// Incremental frame scanner for an edge-triggered read loop: feed it
/// whatever the socket produced, pull complete frames out. Once a framing
/// violation is detected the parser latches into the error state (error()
/// non-empty) and next() returns nothing — the connection is beyond
/// resynchronization and must be closed.
class FrameParser {
 public:
  /// Appends raw socket bytes to the scan buffer.
  void feed(const char* data, std::size_t size);

  /// Extracts the next complete frame, or nullopt when more bytes are
  /// needed (or the parser is in the error state).
  std::optional<Frame> next();

  /// Loud description of the framing violation; empty while healthy.
  const std::string& error() const { return error_; }

  /// Bytes buffered but not yet consumed (tests; backpressure accounting).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;
  std::string error_;
};

}  // namespace cmarkov::serve::net
