// Reconstruction of the clustered call-transition matrix (the output of
// Algorithm 1) in the form the HMM initializer consumes: transition mass
// between clusters, entry/exit mass per cluster, and per-member emission
// weights.
#pragma once

#include <vector>

#include "src/analysis/context.hpp"
#include "src/linalg/matrix.hpp"
#include "src/reduction/cluster_calls.hpp"

namespace cmarkov::reduction {

/// The reduced program model: one prospective hidden state per cluster.
struct ReducedModel {
  /// Members per cluster (call symbols merged into the state).
  std::vector<std::vector<analysis::CallSymbol>> members;
  /// member_weights[c][i]: share of cluster c's observation mass owned by
  /// members[c][i] (incoming transition mass, normalized per cluster).
  std::vector<std::vector<double>> member_weights;
  /// k x k transition mass between clusters (unnormalized counts).
  Matrix transitions;
  /// Mass from program ENTRY into each cluster (the HMM initial
  /// distribution before normalization).
  std::vector<double> entry_mass;
  /// Mass from each cluster to program EXIT.
  std::vector<double> exit_mass;

  std::size_t num_states() const { return members.size(); }
};

/// Folds the aggregated matrix through a clustering: cells between members
/// are summed into cluster cells ("all occurrences of the same call pair are
/// added up to one matrix cell", applied at cluster granularity).
ReducedModel reconstruct_reduced_model(
    const analysis::CallTransitionMatrix& matrix,
    const CallClustering& clustering);

}  // namespace cmarkov::reduction
