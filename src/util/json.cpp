#include "src/util/json.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace cmarkov::util {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after document");
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("json: " + what + " at offset " +
                                std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() const {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value(std::size_t depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    switch (peek()) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  JsonValue parse_object(std::size_t depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array(std::size_t depth) {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u':
          // Validated but not decoded — none of our schemas emit \u.
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          for (int i = 0; i < 4; ++i) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              fail("bad \\u escape");
            }
            ++pos_;
          }
          out.push_back('?');
          break;
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("bad number");
    }
    // RFC 8259 integer part: a single 0, or a nonzero-led digit run.
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("leading zero");
      }
    }
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail("bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::string token(text_.substr(start, pos_ - start));
    v.number = std::strtod(token.c_str(), nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue* JsonValue::find_path(std::string_view path) const {
  const JsonValue* node = this;
  while (node != nullptr && !path.empty()) {
    const std::size_t dot = path.find('.');
    const std::string_view head =
        dot == std::string_view::npos ? path : path.substr(0, dot);
    node = node->find(head);
    path = dot == std::string_view::npos ? std::string_view{}
                                         : path.substr(dot + 1);
  }
  return node;
}

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace cmarkov::util
