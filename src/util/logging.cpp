#include "src/util/logging.hpp"

#include <atomic>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "src/util/stopwatch.hpp"

namespace cmarkov {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;
std::atomic<int> g_next_thread_ordinal{1};

/// Small stable id for the calling thread, assigned on its first log line.
int thread_ordinal() {
  thread_local const int ordinal =
      g_next_thread_ordinal.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Monotonic time base shared by every log line.
const Stopwatch& process_clock() {
  static const Stopwatch watch;
  return watch;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const int ordinal = thread_ordinal();
  const std::lock_guard<std::mutex> lock(g_mutex);
  // Timestamp read under the lock so timestamps are non-decreasing in
  // output order even with concurrent writers.
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%s %.6f t%d] ", level_name(level),
                process_clock().seconds(), ordinal);
  std::cerr << prefix << message << "\n";
}

}  // namespace cmarkov
