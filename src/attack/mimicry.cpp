#include "src/attack/mimicry.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cmarkov::attack {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

struct BeamState {
  hmm::ObservationSeq sequence;
  std::vector<double> alpha;  // scaled forward vector
  double log_likelihood = 0.0;
  std::size_t goals_done = 0;
};

/// Predictive distribution over next states: trans_j = sum_i alpha_i A_ij.
std::vector<double> predict_states(const hmm::Hmm& model,
                                   const std::vector<double>& alpha) {
  const std::size_t n = model.num_states();
  std::vector<double> trans(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = alpha[i];
    if (a == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      trans[j] += a * model.transition(i, j);
    }
  }
  return trans;
}

/// Extends a state with observation `obs`; returns false if impossible.
bool advance(const hmm::Hmm& model, BeamState& state, std::size_t obs,
             bool is_goal) {
  const std::size_t n = model.num_states();
  std::vector<double> next(n, 0.0);
  double scale = 0.0;
  if (state.sequence.empty()) {
    for (std::size_t j = 0; j < n; ++j) {
      next[j] = model.initial[j] * model.emission(j, obs);
      scale += next[j];
    }
  } else {
    const std::vector<double> trans = predict_states(model, state.alpha);
    for (std::size_t j = 0; j < n; ++j) {
      next[j] = trans[j] * model.emission(j, obs);
      scale += next[j];
    }
  }
  if (scale <= 0.0) return false;
  for (double& v : next) v /= scale;
  state.alpha = std::move(next);
  state.log_likelihood += std::log(scale);
  state.sequence.push_back(obs);
  if (is_goal) state.goals_done += 1;
  return true;
}

/// Most probable next observations under the state's predictive
/// distribution.
std::vector<std::size_t> padding_candidates(const hmm::Hmm& model,
                                            const BeamState& state,
                                            std::size_t count) {
  const std::size_t m = model.num_symbols();
  std::vector<double> weight(m, 0.0);
  if (state.sequence.empty()) {
    for (std::size_t j = 0; j < model.num_states(); ++j) {
      for (std::size_t o = 0; o < m; ++o) {
        weight[o] += model.initial[j] * model.emission(j, o);
      }
    }
  } else {
    const std::vector<double> trans = predict_states(model, state.alpha);
    for (std::size_t j = 0; j < model.num_states(); ++j) {
      if (trans[j] == 0.0) continue;
      for (std::size_t o = 0; o < m; ++o) {
        weight[o] += trans[j] * model.emission(j, o);
      }
    }
  }
  std::vector<std::size_t> order(m);
  for (std::size_t o = 0; o < m; ++o) order[o] = o;
  const std::size_t keep = std::min(count, m);
  std::partial_sort(order.begin(),
                    order.begin() + static_cast<std::ptrdiff_t>(keep),
                    order.end(), [&](std::size_t a, std::size_t b) {
                      return weight[a] > weight[b];
                    });
  order.resize(keep);
  return order;
}

}  // namespace

MimicryResult craft_mimicry(const eval::BuiltModel& model,
                            const std::vector<std::string>& goal_observations,
                            const MimicryOptions& options) {
  MimicryResult result;
  result.log_likelihood = kNegInf;

  // Resolve goal observations; out-of-alphabet goals defeat the attack.
  std::vector<std::size_t> goals;
  for (const auto& name : goal_observations) {
    const auto id = model.alphabet.find(name);
    if (!id.has_value()) {
      result.unknown_goals.push_back(name);
    } else {
      goals.push_back(*id);
    }
  }
  if (!result.unknown_goals.empty()) return result;
  if (goals.size() > options.segment_length) return result;

  std::vector<BeamState> beam(1);
  for (std::size_t t = 0; t < options.segment_length; ++t) {
    std::vector<BeamState> next_beam;
    const std::size_t remaining_slots = options.segment_length - t;
    for (const BeamState& state : beam) {
      const std::size_t remaining_goals = goals.size() - state.goals_done;
      const bool must_emit_goal = remaining_goals >= remaining_slots;
      // Option A: emit the next goal observation now.
      if (remaining_goals > 0) {
        BeamState extended = state;
        if (advance(model.hmm, extended, goals[state.goals_done], true)) {
          next_beam.push_back(std::move(extended));
        }
      }
      // Option B: padding, if the schedule still allows it.
      if (!must_emit_goal) {
        for (std::size_t obs : padding_candidates(
                 model.hmm, state, options.candidates_per_step)) {
          BeamState extended = state;
          if (advance(model.hmm, extended, obs, false)) {
            next_beam.push_back(std::move(extended));
          }
        }
      }
    }
    if (next_beam.empty()) return result;  // attack cannot proceed
    std::sort(next_beam.begin(), next_beam.end(),
              [](const BeamState& a, const BeamState& b) {
                if (a.goals_done != b.goals_done) {
                  return a.goals_done > b.goals_done;
                }
                return a.log_likelihood > b.log_likelihood;
              });
    if (next_beam.size() > options.beam_width) {
      next_beam.resize(options.beam_width);
    }
    beam = std::move(next_beam);
  }

  for (const BeamState& state : beam) {
    if (state.goals_done == goals.size() &&
        state.log_likelihood > result.log_likelihood) {
      result.segment = state.sequence;
      result.log_likelihood = state.log_likelihood;
      result.goal_embedded = true;
    }
  }
  return result;
}

}  // namespace cmarkov::attack
