// cmarkovd's transport-agnostic line protocol. One transport connection is
// one protocol conversation, which is one monitored session:
//
//   HELLO <model> [session-id] [tid=<id>] -> OK session=<id> model=<model>
//   EV <site> <callee> [sys|lib] [tid=<id>]
//                                    -> OK | OK dropped-oldest
//                                       | ERR rejected queue-full
//   STATS                            -> STATS v=1 session=... (drains first)
//   METRICS                          -> METRICS v=1 <name>=<value>...
//                                       (service-wide, from the registry)
//   TRACE [n]                        -> TRACE v=1 session=... n=<k> plus
//                                       k decision-record JSON lines
//   EVICT                            -> OK session=<id> evicted_dropped=<n>
//                                       (session frozen into the snapshot
//                                       store; queued events discarded and
//                                       counted; the next EV transparently
//                                       restores it)
//   RELOAD <model> <path>            -> OK model=<m> version=<v>
//                                       rebound=<k> (hot model swap; live
//                                       sessions rebind at a window
//                                       boundary, zero accepted events
//                                       lost)
//   BYE                              -> OK session=<id> alarms=<n>
//   FAILPOINT                        -> FAILPOINT v=1 n=<k> plus one
//                                       "<name> <spec> hits=<n>" line per
//                                       known failpoint (admin/chaos verb)
//   FAILPOINT <name> <spec>          -> OK failpoint=<name> spec=<spec>
//                                       (spec: off|always|once|every:N|
//                                       after:N; arms or disarms the
//                                       named fault-injection site)
//
// <site> is the calling context (caller function) of the event, <callee>
// the called function — mirroring the paper's context-sensitive
// observations. An optional trailing tid=<id> names a trace id: on HELLO
// it becomes the session default, on EV it overrides per event. Events
// carrying a trace id are always traced (sampling bypassed) and their
// replies echo the id (`OK tid=<id>`). Blank lines and "#" comment lines
// produce no response. Errors never throw out of handle_line; they render
// as "ERR <reason>". Full grammar and examples: docs/SERVING.md.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "src/serve/session_manager.hpp"

namespace cmarkov::serve {

/// Renders SessionStats as the one-line STATS reply body.
std::string format_session_stats(const SessionStats& stats);

/// One protocol conversation. Owns the session it opens: destroying the
/// object (transport disconnect) closes the session if BYE never arrived.
class ProtocolSession {
 public:
  explicit ProtocolSession(SessionManager& manager);
  ~ProtocolSession();
  ProtocolSession(const ProtocolSession&) = delete;
  ProtocolSession& operator=(const ProtocolSession&) = delete;

  /// Handles one request line; returns the single response line, or an
  /// empty string for blank/comment lines. Never throws.
  std::string handle_line(std::string_view line);

  /// True once BYE was processed; further lines answer ERR.
  bool closed() const { return closed_; }

  /// Empty until HELLO succeeds.
  const std::string& session_id() const { return session_id_; }

 private:
  std::string handle_hello(std::vector<std::string> words);
  std::string handle_event(std::vector<std::string> words);
  std::string handle_trace(const std::vector<std::string>& words);
  std::string handle_evict();
  std::string handle_reload(const std::vector<std::string>& words);
  std::string handle_failpoint(const std::vector<std::string>& words);
  std::string handle_bye();

  SessionManager& manager_;
  std::string session_id_;
  /// HELLO's tid= value; applied to events without their own.
  std::string default_trace_id_;
  bool closed_ = false;
};

}  // namespace cmarkov::serve
