#include "src/ir/lexer.hpp"

#include <cctype>
#include <map>

namespace cmarkov::ir {

SyntaxError::SyntaxError(const std::string& message, int line, int column)
    : std::runtime_error(message + " at line " + std::to_string(line) +
                         ", column " + std::to_string(column)),
      line_(line),
      column_(column) {}

namespace {

const std::map<std::string, TokenKind, std::less<>>& keyword_table() {
  static const std::map<std::string, TokenKind, std::less<>> table = {
      {"fn", TokenKind::kFn},         {"var", TokenKind::kVar},
      {"if", TokenKind::kIf},         {"else", TokenKind::kElse},
      {"while", TokenKind::kWhile},   {"return", TokenKind::kReturn},
      {"sys", TokenKind::kSys},       {"lib", TokenKind::kLib},
      {"input", TokenKind::kInput},
  };
  return table;
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  std::vector<Token> run() {
    std::vector<Token> tokens;
    while (true) {
      skip_whitespace_and_comments();
      Token token = next_token();
      const bool done = token.kind == TokenKind::kEnd;
      tokens.push_back(std::move(token));
      if (done) return tokens;
    }
  }

 private:
  bool at_end() const { return pos_ >= source_.size(); }

  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
  }

  char advance() {
    const char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  void skip_whitespace_and_comments() {
    while (!at_end()) {
      const char c = peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        advance();
      } else if (c == '/' && peek(1) == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        return;
      }
    }
  }

  Token make(TokenKind kind, int line, int column, std::string text = {}) {
    Token token;
    token.kind = kind;
    token.text = std::move(text);
    token.line = line;
    token.column = column;
    return token;
  }

  Token next_token() {
    const int line = line_;
    const int column = column_;
    if (at_end()) return make(TokenKind::kEnd, line, column);

    const char c = advance();
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text(1, c);
      while (std::isalnum(static_cast<unsigned char>(peek())) ||
             peek() == '_') {
        text += advance();
      }
      const auto& keywords = keyword_table();
      if (auto it = keywords.find(text); it != keywords.end()) {
        return make(it->second, line, column, std::move(text));
      }
      return make(TokenKind::kIdentifier, line, column, std::move(text));
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = c - '0';
      while (std::isdigit(static_cast<unsigned char>(peek()))) {
        value = value * 10 + (advance() - '0');
      }
      Token token = make(TokenKind::kInteger, line, column);
      token.int_value = value;
      return token;
    }

    switch (c) {
      case '"': {
        std::string text;
        while (true) {
          if (at_end()) {
            throw SyntaxError("unterminated string literal", line, column);
          }
          const char s = advance();
          if (s == '"') break;
          if (s == '\n') {
            throw SyntaxError("newline in string literal", line, column);
          }
          text += s;
        }
        return make(TokenKind::kString, line, column, std::move(text));
      }
      case '(': return make(TokenKind::kLParen, line, column);
      case ')': return make(TokenKind::kRParen, line, column);
      case '{': return make(TokenKind::kLBrace, line, column);
      case '}': return make(TokenKind::kRBrace, line, column);
      case ',': return make(TokenKind::kComma, line, column);
      case ';': return make(TokenKind::kSemicolon, line, column);
      case '+': return make(TokenKind::kPlus, line, column);
      case '-': return make(TokenKind::kMinus, line, column);
      case '*': return make(TokenKind::kStar, line, column);
      case '/': return make(TokenKind::kSlash, line, column);
      case '%': return make(TokenKind::kPercent, line, column);
      case '<':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kLe, line, column);
        }
        return make(TokenKind::kLt, line, column);
      case '>':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kGe, line, column);
        }
        return make(TokenKind::kGt, line, column);
      case '=':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kEqEq, line, column);
        }
        return make(TokenKind::kAssign, line, column);
      case '!':
        if (peek() == '=') {
          advance();
          return make(TokenKind::kNotEq, line, column);
        }
        return make(TokenKind::kNot, line, column);
      case '&':
        if (peek() == '&') {
          advance();
          return make(TokenKind::kAndAnd, line, column);
        }
        throw SyntaxError("stray '&'", line, column);
      case '|':
        if (peek() == '|') {
          advance();
          return make(TokenKind::kOrOr, line, column);
        }
        throw SyntaxError("stray '|'", line, column);
      default:
        throw SyntaxError(std::string("unexpected character '") + c + "'",
                          line, column);
    }
  }

  std::string_view source_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

std::vector<Token> tokenize(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace cmarkov::ir
