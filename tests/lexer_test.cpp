// Unit tests for the MiniC lexer.
#include <gtest/gtest.h>

#include "src/ir/lexer.hpp"

namespace cmarkov::ir {
namespace {

std::vector<TokenKind> kinds_of(std::string_view source) {
  std::vector<TokenKind> kinds;
  for (const auto& token : tokenize(source)) kinds.push_back(token.kind);
  return kinds;
}

TEST(LexerTest, EmptySourceYieldsEnd) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, Keywords) {
  const auto kinds = kinds_of("fn var if else while return sys lib input");
  const std::vector<TokenKind> expected = {
      TokenKind::kFn,    TokenKind::kVar,   TokenKind::kIf,
      TokenKind::kElse,  TokenKind::kWhile, TokenKind::kReturn,
      TokenKind::kSys,   TokenKind::kLib,   TokenKind::kInput,
      TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, IdentifiersAndKeywordPrefixes) {
  const auto tokens = tokenize("fnord variable if_x _under x1");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[0].text, "fnord");
  EXPECT_EQ(tokens[1].text, "variable");
  EXPECT_EQ(tokens[2].text, "if_x");
  EXPECT_EQ(tokens[3].text, "_under");
  EXPECT_EQ(tokens[4].text, "x1");
}

TEST(LexerTest, IntegerLiterals) {
  const auto tokens = tokenize("0 42 123456789");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 123456789);
}

TEST(LexerTest, StringLiterals) {
  const auto tokens = tokenize("\"read\" \"\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "read");
  EXPECT_EQ(tokens[1].text, "");
}

TEST(LexerTest, OperatorsIncludingTwoCharacter) {
  const auto kinds =
      kinds_of("+ - * / % < <= > >= == != = && || ! ( ) { } , ;");
  const std::vector<TokenKind> expected = {
      TokenKind::kPlus,    TokenKind::kMinus,   TokenKind::kStar,
      TokenKind::kSlash,   TokenKind::kPercent, TokenKind::kLt,
      TokenKind::kLe,      TokenKind::kGt,      TokenKind::kGe,
      TokenKind::kEqEq,    TokenKind::kNotEq,   TokenKind::kAssign,
      TokenKind::kAndAnd,  TokenKind::kOrOr,    TokenKind::kNot,
      TokenKind::kLParen,  TokenKind::kRParen,  TokenKind::kLBrace,
      TokenKind::kRBrace,  TokenKind::kComma,   TokenKind::kSemicolon,
      TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, MaximalMunchWithoutSpaces) {
  const auto kinds = kinds_of("a<=b==c!=d");
  const std::vector<TokenKind> expected = {
      TokenKind::kIdentifier, TokenKind::kLe,    TokenKind::kIdentifier,
      TokenKind::kEqEq,       TokenKind::kIdentifier, TokenKind::kNotEq,
      TokenKind::kIdentifier, TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, LineCommentsAreSkipped) {
  const auto tokens = tokenize("var x; // trailing comment\n// full line\ny");
  ASSERT_EQ(tokens.size(), 5u);  // var, x, ;, y, EOF
  EXPECT_EQ(tokens[3].text, "y");
  EXPECT_EQ(tokens[3].line, 3);
}

TEST(LexerTest, TracksLineAndColumn) {
  const auto tokens = tokenize("fn main\n  x");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].column, 4);
  EXPECT_EQ(tokens[2].line, 2);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(LexerTest, ErrorsOnUnterminatedString) {
  EXPECT_THROW(tokenize("\"abc"), SyntaxError);
  EXPECT_THROW(tokenize("\"ab\ncd\""), SyntaxError);
}

TEST(LexerTest, ErrorsOnStrayCharacters) {
  EXPECT_THROW(tokenize("a & b"), SyntaxError);
  EXPECT_THROW(tokenize("a | b"), SyntaxError);
  EXPECT_THROW(tokenize("#"), SyntaxError);
}

TEST(LexerTest, SyntaxErrorCarriesPosition) {
  try {
    tokenize("ok\n  $");
    FAIL() << "expected SyntaxError";
  } catch (const SyntaxError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_EQ(e.column(), 3);
  }
}

TEST(LexerTest, TokenKindNamesAreDistinctive) {
  EXPECT_EQ(token_kind_name(TokenKind::kFn), "'fn'");
  EXPECT_EQ(token_kind_name(TokenKind::kEnd), "<eof>");
  EXPECT_EQ(token_kind_name(TokenKind::kIdentifier), "identifier");
}

}  // namespace
}  // namespace cmarkov::ir
