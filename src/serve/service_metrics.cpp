#include "src/serve/service_metrics.hpp"

#include <sstream>

#include "src/util/strings.hpp"

namespace cmarkov::serve {

const std::array<double, LatencyHistogram::kBuckets>&
LatencyHistogram::bucket_bounds() {
  static const std::array<double, kBuckets> bounds = {
      1,     2,     5,     10,    20,    50,    100,
      200,   500,   1e3,   2e3,   5e3,   1e4,   2e4,
      5e4,   1e5,   2e5,   5e5,   1e6,   kOverflowMicros};
  return bounds;
}

LatencyHistogram::LatencyHistogram() {
  for (auto& count : counts_) count.store(0, std::memory_order_relaxed);
}

void LatencyHistogram::record(double micros) {
  const auto& bounds = bucket_bounds();
  std::size_t bucket = kBuckets - 1;
  for (std::size_t i = 0; i + 1 < kBuckets; ++i) {
    if (micros <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::samples() const {
  std::uint64_t total = 0;
  for (const auto& count : counts_) {
    total += count.load(std::memory_order_relaxed);
  }
  return total;
}

double LatencyHistogram::quantile_micros(double q) const {
  const std::uint64_t total = samples();
  if (total == 0) return 0.0;
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(cumulative) >= rank) return bucket_bounds()[i];
  }
  return kOverflowMicros;
}

std::string ServiceMetrics::to_line() const {
  std::ostringstream out;
  out << "uptime_s=" << format_double(uptime_seconds, 3)
      << " sessions=" << sessions_open << " enqueued=" << events_enqueued
      << " processed=" << events_processed << " dropped=" << events_dropped
      << " rejected=" << events_rejected << " windows=" << windows_scored
      << " alarms=" << alarms
      << " events_per_s=" << format_double(events_per_second, 0)
      << " p50_us=" << format_double(p50_latency_micros, 0)
      << " p99_us=" << format_double(p99_latency_micros, 0) << " qdepth=";
  for (std::size_t i = 0; i < queue_depths.size(); ++i) {
    if (i > 0) out << ",";
    out << queue_depths[i];
  }
  return out.str();
}

}  // namespace cmarkov::serve
