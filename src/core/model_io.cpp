#include "src/core/model_io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cmarkov::core {

namespace {

constexpr const char* kMagic = "cmarkov-detector";
constexpr int kVersion = 1;

void write_matrix(std::ostream& out, const char* tag, const Matrix& m) {
  out << tag << " " << m.rows() << " " << m.cols() << "\n";
  out << std::setprecision(17);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      if (c > 0) out << " ";
      out << m(r, c);
    }
    out << "\n";
  }
}

Matrix read_matrix(std::istream& in, const std::string& expected_tag) {
  std::string tag;
  std::size_t rows = 0;
  std::size_t cols = 0;
  if (!(in >> tag >> rows >> cols) || tag != expected_tag) {
    throw std::runtime_error("model_io: expected matrix tag '" +
                             expected_tag + "'");
  }
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (!(in >> m(r, c))) {
        throw std::runtime_error("model_io: truncated matrix body");
      }
    }
  }
  return m;
}

}  // namespace

void save_detector(std::ostream& out, const Detector& detector) {
  const DetectorConfig& config = detector.config();
  out << kMagic << " " << kVersion << "\n";
  out << "filter " << analysis::call_filter_name(config.pipeline.filter)
      << "\n";
  out << "context " << (config.pipeline.context_sensitive ? 1 : 0) << "\n";
  out << "segment_length " << config.segments.length << "\n";
  out << "trained " << (detector.trained() ? 1 : 0) << "\n";
  out << std::setprecision(17);
  out << "threshold " << detector.threshold() << "\n";

  const hmm::Alphabet& alphabet = detector.alphabet();
  out << "alphabet " << alphabet.size() << "\n";
  for (const auto& symbol : alphabet.symbols()) {
    out << symbol << "\n";  // observation strings never contain newlines
  }

  const hmm::Hmm& model = detector.model();
  write_matrix(out, "transition", model.transition);
  write_matrix(out, "emission", model.emission);
  out << "initial " << model.initial.size() << "\n";
  for (std::size_t i = 0; i < model.initial.size(); ++i) {
    if (i > 0) out << " ";
    out << model.initial[i];
  }
  out << "\n";
}

void save_detector_file(const std::string& path, const Detector& detector) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("model_io: cannot open '" + path +
                             "' for writing");
  }
  save_detector(out, detector);
}

Detector load_detector(std::istream& in) {
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    throw std::runtime_error("model_io: not a cmarkov detector file");
  }
  if (version != kVersion) {
    throw std::runtime_error("model_io: unsupported version " +
                             std::to_string(version));
  }

  auto expect_key = [&](const char* key) {
    std::string seen;
    if (!(in >> seen) || seen != key) {
      throw std::runtime_error(std::string("model_io: expected key '") +
                               key + "'");
    }
  };

  DetectorConfig config;
  expect_key("filter");
  std::string filter_name;
  in >> filter_name;
  if (filter_name == "syscall") {
    config.pipeline.filter = analysis::CallFilter::kSyscalls;
  } else if (filter_name == "libcall") {
    config.pipeline.filter = analysis::CallFilter::kLibcalls;
  } else if (filter_name == "all") {
    config.pipeline.filter = analysis::CallFilter::kAll;
  } else {
    throw std::runtime_error("model_io: unknown filter '" + filter_name +
                             "'");
  }
  expect_key("context");
  int context = 0;
  in >> context;
  config.pipeline.context_sensitive = context != 0;
  expect_key("segment_length");
  in >> config.segments.length;
  expect_key("trained");
  int trained = 0;
  in >> trained;
  expect_key("threshold");
  double threshold = 0.0;
  in >> threshold;

  expect_key("alphabet");
  std::size_t alphabet_size = 0;
  in >> alphabet_size;
  in.ignore(std::numeric_limits<std::streamsize>::max(), '\n');
  hmm::Alphabet alphabet;
  for (std::size_t i = 0; i < alphabet_size; ++i) {
    std::string symbol;
    if (!std::getline(in, symbol)) {
      throw std::runtime_error("model_io: truncated alphabet");
    }
    alphabet.intern(symbol);
  }
  if (alphabet.size() != alphabet_size) {
    throw std::runtime_error("model_io: duplicate alphabet symbols");
  }

  hmm::Hmm model;
  model.transition = read_matrix(in, "transition");
  model.emission = read_matrix(in, "emission");
  expect_key("initial");
  std::size_t initial_size = 0;
  in >> initial_size;
  model.initial.resize(initial_size);
  for (auto& v : model.initial) {
    if (!(in >> v)) throw std::runtime_error("model_io: truncated initial");
  }

  return Detector::from_parts(std::move(config), std::move(model),
                              std::move(alphabet), threshold, trained != 0);
}

Detector load_detector_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("model_io: cannot open '" + path + "'");
  }
  return load_detector(in);
}

}  // namespace cmarkov::core
