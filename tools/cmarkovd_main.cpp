// cmarkovd — the concurrent multi-session scoring daemon over trained
// detectors (docs/SERVING.md).
//
//   cmarkovd --model <name>=<path> [--model ...] [--models-dir DIR]
//            [--workers N] [--queue N] [--policy block|drop-oldest|reject]
//            [--windows-to-alarm N] [--cooldown N]
//            [--max-sessions N] [--snapshot-dir DIR]
//            [--trace-sample N] [--decision-log PATH] [--chrome-trace PATH]
//            [--replay <model>:<trace-file>]...   replay mode (batch)
//            [--tcp PORT] [--net-loops N]         epoll TCP front-end
//            [--admin-port PORT] [--collector-period-ms N]   admin plane
//
// With no --replay/--tcp the daemon speaks the line protocol on
// stdin/stdout (HELLO/EV/STATS/METRICS/TRACE/BYE — one response line per
// request). --replay pushes a recorded trace file through a full protocol
// session (HELLO, one EV per event, STATS, BYE) and prints the dialogue's
// verdict lines; repeat the flag to replay several sessions.
//
// --tcp runs the edge-triggered epoll front-end (src/serve/net): each
// connection speaks either the CMKB binary frame protocol or the text line
// protocol (auto-detected). --max-sessions bounds resident sessions (LRU
// eviction into the snapshot store); --snapshot-dir persists evicted
// sessions across restarts (reloaded at boot).
//
// Tracing (docs/OBSERVABILITY.md): --trace-sample N enables the span
// tracer and decision audit at 1-in-N (1 = every window, 0 = only flagged
// windows/alarms, which are always recorded). --decision-log writes the
// service-wide `cmarkov.decision.v1` JSONL on exit; --chrome-trace writes
// the recorded queue/score/reply spans as a Chrome-trace JSON array. The
// sinks flush when replay or stdin mode finishes, or on SIGINT/SIGTERM in
// TCP mode.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/model_io.hpp"
#include "src/obs/export.hpp"
#include "src/obs/timeseries.hpp"
#include "src/obs/trace/chrome_trace.hpp"
#include "src/serve/drift_monitor.hpp"
#include "src/serve/net/epoll_server.hpp"
#include "src/serve/service.hpp"
#include "src/trace/trace_io.hpp"
#include "src/util/failpoint.hpp"
#include "src/util/logging.hpp"
#include "src/util/strings.hpp"

using namespace cmarkov;

namespace {

struct DaemonOptions {
  std::vector<std::pair<std::string, std::string>> models;  // name -> path
  std::string models_dir;
  std::vector<std::pair<std::string, std::string>> replays;  // model -> trace
  int tcp_port = 0;
  std::size_t net_loops = 1;
  std::uint64_t handshake_timeout_ms = 30'000;
  /// --admin-port: HTTP admin plane (/metrics /healthz /varz /statusz) on
  /// its own listener; 0 = disabled. Requires --tcp.
  int admin_port = 0;
  /// /varz collector sampling period (ring derivation window is
  /// period * 120 samples).
  std::uint64_t collector_period_ms = 1000;
  std::string decision_log_path;
  std::string chrome_trace_path;
  /// --drift <model>=<trainer-state>: arm drift-triggered refresh.
  std::string drift_model;
  std::string drift_state_path;
  serve::DriftOptions drift;
  serve::ServiceConfig service;
};

int usage() {
  std::cerr
      << "usage: cmarkovd --model <name>=<path> [--model ...]\n"
         "                [--models-dir DIR] [--workers N] [--queue N]\n"
         "                [--policy block|drop-oldest|reject]\n"
         "                [--windows-to-alarm N] [--cooldown N]\n"
         "                [--max-sessions N] [--snapshot-dir DIR]\n"
         "                [--trace-sample N] [--decision-log PATH]\n"
         "                [--chrome-trace PATH]\n"
         "                [--replay <model>:<trace-file>]...\n"
         "                [--tcp PORT] [--net-loops N]\n"
         "                [--handshake-timeout-ms N] (0 = never reap)\n"
         "                [--admin-port PORT] (0 = disabled; needs --tcp)\n"
         "                [--collector-period-ms N]\n"
         "                [--overload on|off] [--deadline-ms N]\n"
         "                [--drift <model>=<trainer-state>]\n"
         "                [--drift-threshold KS] [--drift-baseline N]\n"
         "                [--drift-recent N] [--drift-consecutive N]\n"
         "                [--drift-min-absorb N]\n"
         "With neither --replay nor --tcp, serves the line protocol on\n"
         "stdin/stdout: HELLO <model> [id] [tid=T] | EV <site> <callee>\n"
         "[sys|lib] [tid=T] | STATS | METRICS | TRACE [n] | FAILPOINT |\n"
         "BYE\n"
         "--deadline-ms sets the per-event latency budget the overload\n"
         "degradation ladder defends (docs/SERVING.md). Failpoints can be\n"
         "pre-armed via CMARKOV_FAILPOINTS=\"name=spec,...\" in the\n"
         "environment. --admin-port (with --tcp) serves the HTTP admin\n"
         "plane (GET /metrics /healthz /varz /statusz); /varz derives\n"
         "rates from rings sampled every --collector-period-ms, and\n"
         "`cmarkov top --port PORT` renders it live (docs/SERVING.md).\n"
         "--drift watches the named model's score\n"
         "distribution for shift and, when confirmed, absorbs recent\n"
         "clean windows via incremental retraining and hot-reloads the\n"
         "refreshed model (the trainer state comes from\n"
         "`cmarkov train --save-state`; see docs/SERVING.md).\n";
  return 1;
}

DaemonOptions parse_options(int argc, char** argv) {
  DaemonOptions options;
  auto need_value = [&](int i) -> std::string {
    if (i + 1 >= argc) {
      throw std::runtime_error(std::string("missing value for ") + argv[i]);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; i += 2) {
    const std::string flag = argv[i];
    const std::string value = need_value(i);
    if (flag == "--model") {
      const auto eq = value.find('=');
      if (eq == std::string::npos) {
        throw std::runtime_error("--model expects <name>=<path>");
      }
      options.models.emplace_back(value.substr(0, eq), value.substr(eq + 1));
    } else if (flag == "--models-dir") {
      options.models_dir = value;
    } else if (flag == "--replay") {
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("--replay expects <model>:<trace-file>");
      }
      options.replays.emplace_back(value.substr(0, colon),
                                   value.substr(colon + 1));
    } else if (flag == "--tcp") {
      options.tcp_port = std::stoi(value);
    } else if (flag == "--net-loops") {
      options.net_loops = std::stoul(value);
    } else if (flag == "--handshake-timeout-ms") {
      options.handshake_timeout_ms = std::stoull(value);
    } else if (flag == "--admin-port") {
      options.admin_port = std::stoi(value);
    } else if (flag == "--collector-period-ms") {
      options.collector_period_ms = std::stoull(value);
      if (options.collector_period_ms == 0) {
        throw std::runtime_error("--collector-period-ms must be > 0");
      }
    } else if (flag == "--overload") {
      if (value != "on" && value != "off") {
        throw std::runtime_error("--overload expects on|off");
      }
      options.service.overload.enabled = value == "on";
    } else if (flag == "--deadline-ms") {
      options.service.overload.event_deadline_micros =
          static_cast<double>(std::stoull(value)) * 1000.0;
    } else if (flag == "--max-sessions") {
      options.service.max_resident_sessions = std::stoul(value);
    } else if (flag == "--snapshot-dir") {
      options.service.snapshot_dir = value;
    } else if (flag == "--workers") {
      options.service.num_workers = std::stoul(value);
    } else if (flag == "--queue") {
      options.service.queue_capacity = std::stoul(value);
    } else if (flag == "--policy") {
      const auto policy = serve::parse_backpressure_policy(value);
      if (!policy) {
        throw std::runtime_error("unknown policy '" + value +
                                 "' (block|drop-oldest|reject)");
      }
      options.service.policy = *policy;
    } else if (flag == "--windows-to-alarm") {
      options.service.monitor.windows_to_alarm = std::stoul(value);
    } else if (flag == "--cooldown") {
      options.service.monitor.cooldown_events = std::stoul(value);
    } else if (flag == "--trace-sample") {
      options.service.tracing.enabled = true;
      options.service.tracing.sample_every = std::stoul(value);
      options.service.monitor.decisions.enabled = true;
      options.service.monitor.decisions.sample_every = std::stoul(value);
    } else if (flag == "--decision-log") {
      options.decision_log_path = value;
      // The sink is useless without the audit; flagged windows and alarms
      // are always recorded once decisions are on.
      options.service.monitor.decisions.enabled = true;
      options.service.tracing.enabled = true;
    } else if (flag == "--chrome-trace") {
      options.chrome_trace_path = value;
      options.service.tracing.enabled = true;
    } else if (flag == "--drift") {
      const auto eq = value.find('=');
      if (eq == std::string::npos) {
        throw std::runtime_error("--drift expects <model>=<trainer-state>");
      }
      options.drift_model = value.substr(0, eq);
      options.drift_state_path = value.substr(eq + 1);
    } else if (flag == "--drift-threshold") {
      options.drift.ks_threshold = std::stod(value);
    } else if (flag == "--drift-baseline") {
      options.drift.baseline_windows = std::stoul(value);
    } else if (flag == "--drift-recent") {
      options.drift.recent_windows = std::stoul(value);
    } else if (flag == "--drift-consecutive") {
      options.drift.consecutive_epochs = std::stoul(value);
    } else if (flag == "--drift-min-absorb") {
      options.drift.min_absorb_segments = std::stoul(value);
    } else {
      throw std::runtime_error("unknown flag '" + flag + "'");
    }
  }
  return options;
}

/// Replays a recorded trace through a full protocol conversation; prints
/// only the interesting response lines (HELLO/STATS/BYE and any errors).
void replay_trace(serve::CmarkovService& service, const std::string& model,
                  const std::string& trace_path) {
  const trace::Trace trace = trace::read_trace_file(trace_path);
  serve::ProtocolSession session(service.sessions());
  std::cout << session.handle_line("HELLO " + model) << "\n";
  std::size_t errors = 0;
  for (const auto& event : trace.events) {
    const std::string site = event.caller.empty() ? "?" : event.caller;
    const char* kind = event.kind == ir::CallKind::kLibcall ? "lib" : "sys";
    const std::string response = session.handle_line(
        "EV " + site + " " + event.name + " " + kind);
    if (starts_with(response, "ERR")) {
      ++errors;
      std::cout << response << "\n";
    }
  }
  if (errors > 0) std::cout << errors << " events not accepted\n";
  std::cout << session.handle_line("STATS") << "\n";
  std::cout << session.handle_line("BYE") << "\n";
}

/// The epoll TCP front-end: edge-triggered event loops over both the CMKB
/// binary frame protocol and the text line protocol (auto-detected per
/// connection). Blocks until SIGINT/SIGTERM.
int serve_tcp(serve::CmarkovService& service, const DaemonOptions& options,
              serve::DriftRefresher* refresher) {
  static volatile std::sig_atomic_t g_stop = 0;
  std::signal(SIGINT, [](int) { g_stop = 1; });
  std::signal(SIGTERM, [](int) { g_stop = 1; });
  serve::net::NetOptions net;
  net.port = static_cast<std::uint16_t>(options.tcp_port);
  net.num_loops = options.net_loops;
  net.handshake_timeout_micros = options.handshake_timeout_ms * 1000;

  // The admin plane (docs/OBSERVABILITY.md): a second listener speaking
  // HTTP/1.1 on the shared event loops, backed by a collector thread that
  // samples the registry into rolling rings so /varz can serve derived
  // rates without touching the scoring hot path.
  std::unique_ptr<serve::net::AdminHandler> admin;
  std::unique_ptr<obs::TimeSeriesCollector> collector;
  if (options.admin_port > 0) {
    admin = std::make_unique<serve::net::AdminHandler>(service.sessions());
    obs::CollectorOptions copts;
    copts.period_seconds =
        static_cast<double>(options.collector_period_ms) / 1000.0;
    // Gauges (sessions, queue depths, per-shard occupancy) are refreshed
    // by the scrape path; make the collector do the same before sampling.
    copts.pre_sample = [&service] {
      (void)service.sessions().metrics_registry();
    };
    collector = std::make_unique<obs::TimeSeriesCollector>(
        service.sessions().instruments(), std::move(copts));
    admin->set_collector(collector.get());
    if (refresher != nullptr) admin->set_drift_monitor(&refresher->monitor());
    net.admin = admin.get();
    net.admin_port = static_cast<std::uint16_t>(options.admin_port);
  }

  serve::net::EpollServer server(service.sessions(), net);
  server.start();
  if (admin != nullptr) {
    admin->set_loop_status_fn([&server] { return server.loop_status(); });
    collector->start();
  }
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    // Drift refresh runs on this idle thread: partial_fit + hot reload
    // happen here while the workers keep scoring against the old version.
    if (refresher != nullptr) refresher->poll();
  }
  log_info() << "cmarkovd: shutting down";
  // Stop sampling before the server (and its loop_status fn) goes away.
  if (collector != nullptr) collector->stop();
  server.stop();
  return 0;
}

/// Writes the --decision-log / --chrome-trace sinks once a batch mode
/// (replay or stdin) has finished. Drains first so every queued event's
/// record and spans are included.
void flush_trace_sinks(serve::CmarkovService& service,
                       const DaemonOptions& options) {
  if (options.decision_log_path.empty() && options.chrome_trace_path.empty()) {
    return;
  }
  service.sessions().drain();
  if (!options.decision_log_path.empty()) {
    std::ofstream out(options.decision_log_path);
    if (!out) {
      throw std::runtime_error("cannot write decision log to " +
                               options.decision_log_path);
    }
    const auto& log = service.sessions().decision_log();
    out << log.to_jsonl();
    log_info() << "cmarkovd: " << log.appended() << " decision record(s) ("
               << log.dropped() << " dropped) -> "
               << options.decision_log_path;
  }
  if (!options.chrome_trace_path.empty()) {
    std::ofstream out(options.chrome_trace_path);
    if (!out) {
      throw std::runtime_error("cannot write chrome trace to " +
                               options.chrome_trace_path);
    }
    const auto spans = service.sessions().tracer().snapshot();
    out << obs::chrome_trace_json(spans);
    log_info() << "cmarkovd: " << spans.size() << " span(s) -> "
               << options.chrome_trace_path;
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const DaemonOptions options = parse_options(argc, argv);
    // Chaos configs pre-arm fault-injection sites before anything can
    // touch them (CMARKOV_FAILPOINTS="snapshot.write_fail=once,...").
    const std::size_t armed = util::arm_failpoints_from_env();
    if (armed > 0) {
      log_info() << "cmarkovd: " << armed
                 << " failpoint(s) armed from CMARKOV_FAILPOINTS";
    }
    serve::CmarkovService service(options.service);
    for (const auto& [name, path] : options.models) {
      service.registry().load_file(name, path);
    }
    if (!options.models_dir.empty()) {
      service.registry().load_directory(options.models_dir);
    }
    if (service.registry().size() == 0) {
      std::cerr << "cmarkovd: no models loaded (use --model/--models-dir)\n";
      return usage();
    }
    log_info() << "cmarkovd: " << service.registry().size() << " model(s), "
               << options.service.num_workers << " worker(s), policy="
               << serve::backpressure_policy_name(options.service.policy);
    if (!options.service.snapshot_dir.empty()) {
      // Sessions evicted by a previous run resume transparently.
      service.sessions().snapshot_store().load_directory();
    }

    std::unique_ptr<serve::DriftRefresher> refresher;
    if (!options.drift_model.empty()) {
      service.registry().require(options.drift_model);  // fail fast
      hmm::TrainerState state =
          core::load_trainer_state_file(options.drift_state_path);
      refresher = std::make_unique<serve::DriftRefresher>(
          service.sessions(), service.registry(), options.drift_model,
          hmm::Trainer(std::move(state)), options.drift);
      service.sessions().set_drift_monitor(&refresher->monitor(),
                                           options.drift_model);
      log_info() << "cmarkovd: drift refresh armed for model '"
                 << options.drift_model << "' (ks>"
                 << options.drift.ks_threshold << " x"
                 << options.drift.consecutive_epochs << " epochs)";
    }
    // Workers must stop feeding the monitor before the refresher dies
    // (the service outlives it in this scope).
    const auto detach_drift = [&] {
      if (refresher != nullptr) {
        service.sessions().set_drift_monitor(nullptr, {});
        service.sessions().drain();
      }
    };

    if (!options.replays.empty()) {
      for (const auto& [model, path] : options.replays) {
        replay_trace(service, model, path);
      }
      if (refresher != nullptr) {
        service.sessions().drain();
        refresher->poll();
      }
      std::cout << "METRICS " << obs::to_kv_line(service.metrics_registry())
                << "\n";
      flush_trace_sinks(service, options);
      detach_drift();
      return 0;
    }
    if (options.tcp_port > 0) {
      ::signal(SIGPIPE, SIG_IGN);
      const int status = serve_tcp(service, options, refresher.get());
      flush_trace_sinks(service, options);
      detach_drift();
      return status;
    }
    service.serve_stream(std::cin, std::cout);
    if (refresher != nullptr) {
      service.sessions().drain();
      refresher->poll();
    }
    flush_trace_sinks(service, options);
    detach_drift();
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "cmarkovd: " << e.what() << "\n";
    return 1;
  }
}
