#include "src/cfg/cfg_builder.hpp"

#include <map>
#include <stdexcept>

namespace cmarkov::cfg {

namespace {

/// Lowers one function. Registers: params first, then named variables as
/// declared, then temporaries.
class FunctionLowering {
 public:
  FunctionLowering(const ir::Function& fn, std::uint64_t base_address,
                   const LoweringOptions& options, std::uint32_t& site_counter)
      : fn_(fn),
        options_(options),
        site_counter_(site_counter) {
    cfg_.name = fn.name;
    cfg_.params = fn.params;
    cfg_.base_address = base_address;
    for (const auto& param : fn.params) {
      vars_.emplace(param, next_reg_++);
    }
  }

  FunctionCfg run() {
    cfg_.entry = new_block();
    current_ = cfg_.entry;
    lower_block(fn_.body);
    // Implicit `return;` if control reaches the end of the body.
    if (!sealed_) set_terminator(ReturnTerm{});
    cfg_.num_registers = next_reg_;
    cfg_.end_address = cfg_.base_address +
                       instr_counter_ * options_.instruction_size;
    const std::uint64_t span = cfg_.end_address - cfg_.base_address;
    if (span >= options_.function_stride) {
      throw std::invalid_argument("function '" + fn_.name +
                                  "' exceeds its address stride");
    }
    return std::move(cfg_);
  }

 private:
  BlockId new_block() {
    BasicBlock block;
    block.id = static_cast<BlockId>(cfg_.blocks.size());
    cfg_.blocks.push_back(std::move(block));
    return cfg_.blocks.back().id;
  }

  void set_terminator(Terminator term) {
    cfg_.blocks[current_].terminator = std::move(term);
    sealed_ = true;
  }

  /// Starts emitting into `block`; the previous block must be sealed.
  void switch_to(BlockId block) {
    current_ = block;
    sealed_ = false;
  }

  std::uint64_t next_address() {
    return cfg_.base_address + (instr_counter_++) * options_.instruction_size;
  }

  void emit(Instr instr) {
    next_address();  // every instruction occupies an address slot
    cfg_.blocks[current_].instructions.push_back(std::move(instr));
  }

  /// Emits a call instruction and splits the block after it.
  void emit_call(Instr instr) {
    emit(std::move(instr));
    const BlockId next = new_block();
    set_terminator(JumpTerm{next});
    switch_to(next);
  }

  RegId lookup_var(const std::string& name, int line) const {
    auto it = vars_.find(name);
    if (it == vars_.end()) {
      throw std::invalid_argument("lowering: unknown variable '" + name +
                                  "' at line " + std::to_string(line) +
                                  " (run sema first)");
    }
    return it->second;
  }

  RegId new_temp() { return next_reg_++; }

  RegId lower_expr(const ir::Expr& expr) {
    return std::visit(
        [&](const auto& node) -> RegId {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, ir::IntLiteral>) {
            const RegId dst = new_temp();
            emit(ConstInstr{dst, node.value, expr.line});
            return dst;
          } else if constexpr (std::is_same_v<T, ir::VarRef>) {
            return lookup_var(node.name, expr.line);
          } else if constexpr (std::is_same_v<T, ir::BinaryExpr>) {
            const RegId lhs = lower_expr(*node.lhs);
            const RegId rhs = lower_expr(*node.rhs);
            const RegId dst = new_temp();
            emit(BinInstr{node.op, dst, lhs, rhs, expr.line});
            return dst;
          } else if constexpr (std::is_same_v<T, ir::UnaryExpr>) {
            const RegId src = lower_expr(*node.operand);
            const RegId dst = new_temp();
            emit(UnInstr{node.op, dst, src, expr.line});
            return dst;
          } else if constexpr (std::is_same_v<T, ir::ExternalCallExpr>) {
            std::vector<RegId> args;
            args.reserve(node.args.size());
            for (const auto& a : node.args) args.push_back(lower_expr(*a));
            const RegId dst = new_temp();
            ExternalCallInstr call{node.kind, node.name,     dst,
                                   std::move(args), site_counter_++,
                                   next_address(),  expr.line};
            emit_call(std::move(call));
            return dst;
          } else if constexpr (std::is_same_v<T, ir::InternalCallExpr>) {
            std::vector<RegId> args;
            args.reserve(node.args.size());
            for (const auto& a : node.args) args.push_back(lower_expr(*a));
            const RegId dst = new_temp();
            InternalCallInstr call{node.callee,     dst,
                                   std::move(args), site_counter_++,
                                   next_address(),  expr.line};
            emit_call(std::move(call));
            return dst;
          } else {
            const RegId dst = new_temp();
            emit(InputInstr{dst, expr.line});
            return dst;
          }
        },
        expr.node);
  }

  void lower_stmt(const ir::Stmt& stmt) {
    if (sealed_) {
      // Code after `return` in the same block list: give it an unreachable
      // block so lowering stays well-formed (it gets reachability 0).
      switch_to(new_block());
    }
    std::visit(
        [&](const auto& node) {
          using T = std::decay_t<decltype(node)>;
          if constexpr (std::is_same_v<T, ir::VarDeclStmt>) {
            RegId value;
            if (node.init) {
              value = lower_expr(*node.init);
            } else {
              value = new_temp();
              emit(ConstInstr{value, 0, stmt.line});
            }
            const RegId dst = next_reg_++;
            vars_.emplace(node.name, dst);
            emit(MoveInstr{dst, value, stmt.line});
          } else if constexpr (std::is_same_v<T, ir::AssignStmt>) {
            const RegId value = lower_expr(*node.value);
            emit(MoveInstr{lookup_var(node.name, stmt.line), value,
                           stmt.line});
          } else if constexpr (std::is_same_v<T, ir::IfStmt>) {
            const RegId cond = lower_expr(*node.condition);
            const BlockId then_block = new_block();
            const BlockId else_block = new_block();
            const BlockId merge = new_block();
            set_terminator(BranchTerm{cond, then_block, else_block,
                                      stmt.line});
            switch_to(then_block);
            lower_block(node.then_block);
            if (!sealed_) set_terminator(JumpTerm{merge});
            switch_to(else_block);
            if (node.else_block) lower_block(*node.else_block);
            if (!sealed_) set_terminator(JumpTerm{merge});
            switch_to(merge);
          } else if constexpr (std::is_same_v<T, ir::WhileStmt>) {
            const BlockId header = new_block();
            set_terminator(JumpTerm{header});
            switch_to(header);
            const RegId cond = lower_expr(*node.condition);
            // Condition evaluation may contain calls that split blocks;
            // the branch lives in whatever block evaluation ended in, and
            // the back edge targets `header` (re-evaluates the condition).
            const BlockId body = new_block();
            const BlockId exit = new_block();
            set_terminator(BranchTerm{cond, body, exit, stmt.line});
            switch_to(body);
            lower_block(node.body);
            if (!sealed_) set_terminator(JumpTerm{header});
            switch_to(exit);
          } else if constexpr (std::is_same_v<T, ir::ReturnStmt>) {
            if (node.value) {
              const RegId value = lower_expr(*node.value);
              set_terminator(ReturnTerm{value});
            } else {
              set_terminator(ReturnTerm{});
            }
          } else {
            lower_expr(*node.expr);
          }
        },
        stmt.node);
  }

  void lower_block(const ir::BlockStmt& block) {
    for (const auto& stmt : block.statements) lower_stmt(*stmt);
  }

  const ir::Function& fn_;
  const LoweringOptions& options_;
  std::uint32_t& site_counter_;
  FunctionCfg cfg_;
  BlockId current_ = kInvalidBlock;
  bool sealed_ = false;
  RegId next_reg_ = 0;
  std::uint64_t instr_counter_ = 0;
  std::map<std::string, RegId> vars_;
};

}  // namespace

ModuleCfg build_module_cfg(const ir::ProgramModule& module,
                           const LoweringOptions& options) {
  ModuleCfg out;
  out.program_name = module.name();
  out.entry_point = module.entry_point();
  std::uint32_t site_counter = 0;
  std::uint64_t base = options.image_base;
  for (const auto& fn : module.program().functions) {
    FunctionLowering lowering(fn, base, options, site_counter);
    out.functions.push_back(lowering.run());
    base += options.function_stride;
  }
  return out;
}

}  // namespace cmarkov::cfg
