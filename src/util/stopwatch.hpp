// Wall-clock timing for the Table V analysis-runtime measurements and the
// training-speedup estimates of Table II.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace cmarkov {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or last reset, in seconds.
  double seconds() const;
  /// Elapsed time in milliseconds.
  double millis() const { return seconds() * 1e3; }
  /// Elapsed time in microseconds.
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates named phase timings (e.g. "cfg", "probability", "aggregation")
/// across repeated runs; used by the Table V bench.
class PhaseTimer {
 public:
  /// Adds `seconds` to the named phase.
  void add(const std::string& phase, double seconds);

  /// Total seconds accumulated for the phase (0 if never recorded).
  double total(const std::string& phase) const;

  /// Number of samples recorded for the phase.
  std::uint64_t count(const std::string& phase) const;

  /// Mean seconds per sample (0 if never recorded).
  double mean(const std::string& phase) const;

  const std::map<std::string, double>& totals() const { return totals_; }

 private:
  std::map<std::string, double> totals_;
  std::map<std::string, std::uint64_t> counts_;
};

/// RAII helper: times a scope and records it into a PhaseTimer on
/// destruction.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimer& timer, std::string phase)
      : timer_(timer), phase_(std::move(phase)) {}
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;
  ~ScopedPhase() { timer_.add(phase_, watch_.seconds()); }

 private:
  PhaseTimer& timer_;
  std::string phase_;
  Stopwatch watch_;
};

}  // namespace cmarkov
