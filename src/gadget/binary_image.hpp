// Synthetic binary image: an instruction-level rendering of a lowered
// module, used by the ROP-gadget census of Table III. Real gadget scanners
// decode the text section of an ELF binary; here the image is synthesized
// from the module's code layout so gadget addresses stay consistent with
// the Symbolizer's function ranges.
//
// The image contains the program's genuine syscall instructions (at their
// real call-site addresses, carrying their real call names) plus a sprinkle
// of "unintended" instructions — the misaligned decodings ROP compilers
// feast on — whose syscall numbers are effectively random.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cfg/cfg.hpp"
#include "src/util/rng.hpp"

namespace cmarkov::gadget {

enum class Opcode : std::uint8_t {
  kArith,
  kMov,
  kLoad,
  kStore,
  kPush,
  kPop,
  kCall,
  kJump,
  kBranch,
  kSyscall,
  kRet,
  kNop,
};

struct Instruction {
  std::uint64_t address = 0;
  Opcode op = Opcode::kNop;
  /// Call name for kSyscall instructions ("" for unintended decodings with
  /// an unpredictable syscall number).
  std::string syscall_name;
};

struct ImageOptions {
  /// Probability that a filler slot is a RET — real x86 code is dense in
  /// unintended 0xc3 bytes, which is what makes ROP viable at all.
  double stray_ret_rate = 0.02;
  /// Probability that a filler slot decodes to an unintended syscall
  /// instruction (its effective syscall number is attacker-controlled, so
  /// such gadgets count toward the raw census but can never produce a
  /// legitimate (name, caller) observation).
  double stray_syscall_rate = 0.01;
  /// Relative weights of benign filler opcodes (arith, mov, load, store,
  /// push, pop, call, jump, branch, nop).
  std::vector<double> filler_weights = {24, 22, 12, 10, 6, 6, 6, 4, 8, 2};
};

class BinaryImage {
 public:
  /// Synthesizes the image of a lowered module: one instruction slot per
  /// address unit, genuine syscall call sites preserved, function
  /// epilogues ending in RET, deterministic given (module, seed).
  static BinaryImage synthesize(const cfg::ModuleCfg& module,
                                std::uint64_t seed,
                                const ImageOptions& options = {});

  /// Synthesizes a shared-library image ("libc.so" row of Table III): no
  /// module, just `function_count` ranges of typical library code.
  static BinaryImage synthesize_library(std::string name,
                                        std::size_t function_count,
                                        std::size_t instructions_per_function,
                                        std::uint64_t seed,
                                        const ImageOptions& options = {});

  const std::string& name() const { return name_; }
  const std::vector<Instruction>& instructions() const {
    return instructions_;
  }

 private:
  std::string name_;
  std::vector<Instruction> instructions_;  // address-ordered
};

}  // namespace cmarkov::gadget
