// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum the
// snapshot store's on-disk footer uses to tell a torn or bit-rotted file
// from an intact one. Table-driven, byte-at-a-time; fast enough for
// kilobyte session files and dependency-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace cmarkov::util {

/// CRC of `data`, optionally continuing from a previous crc32 return value
/// (pass the prior result as `seed` to checksum in chunks).
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

}  // namespace cmarkov::util
