#include "src/ir/builder.hpp"

namespace cmarkov::ir {

namespace {

BlockStmt block_of(std::vector<StmtPtr> stmts) {
  BlockStmt block;
  block.statements = std::move(stmts);
  return block;
}

}  // namespace

FunctionBuilder::FunctionBuilder(std::string name,
                                 std::vector<std::string> params) {
  fn_.name = std::move(name);
  fn_.params = std::move(params);
}

FunctionBuilder& FunctionBuilder::declare(std::string name, ExprPtr init) {
  fn_.body.statements.push_back(
      make_var_decl(std::move(name), std::move(init)));
  return *this;
}

FunctionBuilder& FunctionBuilder::assign(std::string name, ExprPtr value) {
  fn_.body.statements.push_back(make_assign(std::move(name), std::move(value)));
  return *this;
}

FunctionBuilder& FunctionBuilder::syscall(std::string name) {
  fn_.body.statements.push_back(make_expr_stmt(
      make_external_call(CallKind::kSyscall, std::move(name))));
  return *this;
}

FunctionBuilder& FunctionBuilder::libcall(std::string name) {
  fn_.body.statements.push_back(make_expr_stmt(
      make_external_call(CallKind::kLibcall, std::move(name))));
  return *this;
}

FunctionBuilder& FunctionBuilder::call(std::string callee,
                                       std::vector<ExprPtr> args) {
  fn_.body.statements.push_back(
      make_expr_stmt(make_internal_call(std::move(callee), std::move(args))));
  return *this;
}

FunctionBuilder& FunctionBuilder::if_else(ExprPtr cond,
                                          std::vector<StmtPtr> then_stmts,
                                          std::vector<StmtPtr> else_stmts) {
  std::optional<BlockStmt> else_block;
  if (!else_stmts.empty()) else_block = block_of(std::move(else_stmts));
  fn_.body.statements.push_back(make_if(
      std::move(cond), block_of(std::move(then_stmts)), std::move(else_block)));
  return *this;
}

FunctionBuilder& FunctionBuilder::loop(ExprPtr cond,
                                       std::vector<StmtPtr> body) {
  fn_.body.statements.push_back(
      make_while(std::move(cond), block_of(std::move(body))));
  return *this;
}

FunctionBuilder& FunctionBuilder::ret(ExprPtr value) {
  fn_.body.statements.push_back(make_return(std::move(value)));
  return *this;
}

FunctionBuilder& FunctionBuilder::append(StmtPtr stmt) {
  fn_.body.statements.push_back(std::move(stmt));
  return *this;
}

Function FunctionBuilder::build() { return std::move(fn_); }

ProgramBuilder& ProgramBuilder::add(Function fn) {
  program_.functions.push_back(std::move(fn));
  return *this;
}

ProgramBuilder& ProgramBuilder::add(FunctionBuilder& builder) {
  return add(builder.build());
}

Program ProgramBuilder::build() { return std::move(program_); }

ProgramModule ProgramBuilder::build_module(std::string name,
                                           const std::string& entry_point) {
  return ProgramModule::from_ast(std::move(name), std::move(program_),
                                 entry_point);
}

}  // namespace cmarkov::ir
