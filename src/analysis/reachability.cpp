#include "src/analysis/reachability.hpp"

#include <cmath>
#include <set>

namespace cmarkov::analysis {

namespace {

std::vector<double> acyclic_reachability(const cfg::FunctionCfg& cfg,
                                         const EdgeProbabilities& edges) {
  const auto backs = cfg.back_edges();
  const std::set<std::pair<cfg::BlockId, cfg::BlockId>> back_set(
      backs.begin(), backs.end());

  std::vector<double> reach(cfg.block_count(), 0.0);
  reach[cfg.entry] = 1.0;
  // Reverse post order over forward edges is a topological order of the cut
  // DAG, so each node's parents are finalized before Eq. 1 reads them.
  for (cfg::BlockId node : cfg.reverse_post_order()) {
    const double mass = reach[node];
    if (mass == 0.0) continue;
    for (const auto& [succ, p] : edges.outgoing[node]) {
      if (back_set.contains({node, succ})) continue;
      reach[succ] += mass * p;
    }
  }
  return reach;
}

std::vector<double> fixpoint_reachability(const cfg::FunctionCfg& cfg,
                                          const EdgeProbabilities& edges,
                                          const ReachabilityOptions& options) {
  // visits = e + P^T visits, where e injects 1.0 at the entry. Jacobi
  // iteration converges because every cycle has continuation probability
  // < 1 (branch heuristics never assign 1.0 to a loop edge).
  std::vector<double> visits(cfg.block_count(), 0.0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<double> next(cfg.block_count(), 0.0);
    next[cfg.entry] = 1.0;
    for (cfg::BlockId node = 0; node < cfg.block_count(); ++node) {
      const double mass = visits[node];
      if (mass == 0.0) continue;
      for (const auto& [succ, p] : edges.outgoing[node]) {
        next[succ] += mass * p;
      }
    }
    double delta = 0.0;
    for (std::size_t i = 0; i < visits.size(); ++i) {
      delta = std::max(delta, std::abs(next[i] - visits[i]));
    }
    visits = std::move(next);
    if (delta < options.tolerance) break;
  }
  return visits;
}

}  // namespace

std::vector<double> reachability_probabilities(
    const cfg::FunctionCfg& cfg, const EdgeProbabilities& edges,
    const ReachabilityOptions& options) {
  if (cfg.block_count() == 0) return {};
  if (options.mode == PropagationMode::kAcyclicCut) {
    return acyclic_reachability(cfg, edges);
  }
  return fixpoint_reachability(cfg, edges, options);
}

}  // namespace cmarkov::analysis
