// Batch execution of a suite's test cases: runs the interpreter over
// generated inputs, symbolizes traces (addr2line stage) and accumulates
// coverage — producing the "normal traces" every experiment trains on.
#pragma once

#include <cstdint>

#include "src/trace/coverage.hpp"
#include "src/trace/event.hpp"
#include "src/workload/program_suite.hpp"

namespace cmarkov::workload {

struct TraceCollection {
  /// Symbolized normal traces, one per completed test case.
  std::vector<trace::Trace> traces;
  trace::CoverageSummary coverage;
  std::size_t total_events = 0;
  /// Runs that hit the interpreter's step/depth guard (excluded from
  /// `traces`).
  std::size_t incomplete_runs = 0;
};

/// Runs `count` seeded test cases of the suite and returns their traces.
TraceCollection collect_traces(const ProgramSuite& suite, std::size_t count,
                               std::uint64_t seed);

}  // namespace cmarkov::workload
