#!/usr/bin/env sh
# Guards the PR-9 training API redesign: all training goes through the
# stateful hmm::Trainer (fit / partial_fit / publish). The free function
# baum_welch_train survives for exactly one PR as a deprecated thin shim
# that delegates to Trainer — mirroring the PR-4 set_num_threads
# precedent — so no NEW call sites may appear outside src/hmm. The one
# sanctioned exception is tests/baum_welch_test.cpp, which deliberately
# exercises the shim so its delegation stays covered until removal.
#
# Wired into CTest as `check_trainer_api` (label: train).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

bad="$(grep -rnE 'baum_welch_train[[:space:]]*\(' \
  "$repo_root/src" "$repo_root/tests" "$repo_root/tools" \
  "$repo_root/bench" "$repo_root/examples" \
  --include='*.hpp' --include='*.h' --include='*.cpp' \
  | grep -v "^$repo_root/src/hmm/" \
  | grep -v "^$repo_root/tests/baum_welch_test.cpp:" || true)"

if [ -n "$bad" ]; then
  echo "error: train through hmm::Trainer (fit/partial_fit), not the" >&2
  echo "deprecated baum_welch_train shim (removed next PR):" >&2
  echo "$bad" >&2
  exit 1
fi
echo "ok: no baum_welch_train call sites outside src/hmm (+ the sanctioned shim test)"
