// Lowers a checked MiniC program to per-function CFGs in three-address form.
//
// Lowering rules that matter downstream:
//  - a new basic block starts after every call instruction, so each block
//    makes at most one call (the analysis granularity of Definition 4);
//  - `&&` / `||` evaluate both operands (no short-circuit control flow); the
//    interpreter defines x/0 == x%0 == 0, so strict evaluation is total;
//  - every function gets a synthetic base address; call sites get distinct
//    addresses used by the tracer/symbolizer pair.
#pragma once

#include <cstdint>

#include "src/cfg/cfg.hpp"
#include "src/ir/module.hpp"

namespace cmarkov::cfg {

struct LoweringOptions {
  /// Base address of the first function; subsequent functions are laid out
  /// at fixed strides (mimics a fixed load address of a non-PIE binary).
  std::uint64_t image_base = 0x400000;
  /// Address stride between consecutive functions.
  std::uint64_t function_stride = 0x10000;
  /// Bytes per lowered instruction (address spacing inside a function).
  std::uint64_t instruction_size = 4;
};

/// Lowers every function of the module. Throws std::invalid_argument if the
/// program references an unknown function (run sema first) or a function
/// overflows its address stride.
ModuleCfg build_module_cfg(const ir::ProgramModule& module,
                           const LoweringOptions& options = {});

}  // namespace cmarkov::cfg
