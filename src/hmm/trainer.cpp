#include "src/hmm/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/hmm/forward_backward.hpp"
#include "src/obs/metrics_registry.hpp"
#include "src/obs/run_profile.hpp"
#include "src/util/logging.hpp"
#include "src/util/parallel.hpp"
#include "src/util/stopwatch.hpp"

namespace cmarkov::hmm {

namespace {

/// Sequences per work item of the parallel scoring pass.
constexpr std::size_t kScoreChunk = 64;

/// Per-sequence log-likelihoods with the impossible/empty penalty applied.
/// Scoring fans out over the pool; the mean is reduced in sequence order on
/// the calling thread, so the result is independent of the thread count.
double pooled_mean_log_likelihood(const Hmm& model,
                                  const HmmKernelCache& cache,
                                  const std::vector<ObservationSeq>& sequences,
                                  double impossible_penalty,
                                  WorkerPool& pool) {
  if (sequences.empty()) return 0.0;
  std::vector<double> per_sequence(sequences.size());
  pool.run(chunk_count(sequences.size(), kScoreChunk), [&](std::size_t c) {
    const ChunkRange range = chunk_range(sequences.size(), kScoreChunk, c);
    for (std::size_t s = range.begin; s < range.end; ++s) {
      if (sequences[s].empty()) {
        per_sequence[s] = impossible_penalty;
        continue;
      }
      const double ll =
          forward_scaled(model, sequences[s], cache).log_likelihood;
      per_sequence[s] = std::isinf(ll) ? impossible_penalty : ll;
    }
  });
  double total = 0.0;
  for (double ll : per_sequence) total += ll;
  return total / static_cast<double>(sequences.size());
}

/// Accumulates expected counts for one sequence; returns false if the
/// sequence is empty or impossible under the current model. On success,
/// `log_likelihood` receives the forward log-likelihood computed along the
/// way.
bool accumulate_sequence(const Hmm& model, const HmmKernelCache& cache,
                         const ObservationSeq& seq, SuffStats& acc,
                         double& log_likelihood) {
  if (seq.empty()) return false;
  const ForwardResult fwd = forward_scaled(model, seq, cache);
  if (fwd.impossible) return false;
  log_likelihood = fwd.log_likelihood;
  const Matrix beta = backward_scaled(model, seq, fwd.scales, cache);

  const std::size_t n = model.num_states();
  const std::size_t t_len = seq.size();

  // gamma(t, i) = alpha(t, i) * beta(t, i) * c_t (scaled quantities).
  auto gamma = [&](std::size_t t, std::size_t i) {
    return fwd.alpha(t, i) * beta(t, i) * fwd.scales[t];
  };

  for (std::size_t i = 0; i < n; ++i) acc.initial[i] += gamma(0, i);

  for (std::size_t t = 0; t + 1 < t_len; ++t) {
    const auto emission_col = cache.emission_t.row(seq[t + 1]);
    const auto next_beta = beta.row(t + 1);
    for (std::size_t i = 0; i < n; ++i) {
      const double alpha_ti = fwd.alpha(t, i);
      if (alpha_ti == 0.0) continue;
      const auto out_of_i = model.transition.row(i);
      auto num_row = acc.transition_num.row(i);
      for (std::size_t j = 0; j < n; ++j) {
        // xi(t, i, j): scaled alpha/beta make the normalizer 1.
        const double xi =
            alpha_ti * out_of_i[j] * emission_col[j] * next_beta[j];
        num_row[j] += xi;
      }
    }
  }
  for (std::size_t t = 0; t < t_len; ++t) {
    for (std::size_t i = 0; i < n; ++i) {
      const double g = gamma(t, i);
      acc.emission_num(i, seq[t]) += g;
      acc.emission_den[i] += g;
      if (t + 1 < t_len) acc.transition_den[i] += g;
    }
  }
  return true;
}

void reestimate(Hmm& model, const SuffStats& acc, double pseudocount,
                std::size_t observed_sequences) {
  const std::size_t n = model.num_states();
  const std::size_t m = model.num_symbols();

  for (std::size_t i = 0; i < n; ++i) {
    const double den =
        acc.transition_den[i] + pseudocount * static_cast<double>(n);
    for (std::size_t j = 0; j < n; ++j) {
      model.transition(i, j) = (acc.transition_num(i, j) + pseudocount) / den;
    }
    const double eden =
        acc.emission_den[i] + pseudocount * static_cast<double>(m);
    for (std::size_t k = 0; k < m; ++k) {
      model.emission(i, k) = (acc.emission_num(i, k) + pseudocount) / eden;
    }
  }
  const double iden = static_cast<double>(observed_sequences) +
                      pseudocount * static_cast<double>(n);
  for (std::size_t i = 0; i < n; ++i) {
    model.initial[i] = (acc.initial[i] + pseudocount) / iden;
  }
}

void check_symbol_range(const std::vector<ObservationSeq>& sequences,
                        std::size_t num_symbols, const char* what) {
  for (const ObservationSeq& seq : sequences) {
    for (std::size_t id : seq) {
      if (id >= num_symbols) {
        throw std::invalid_argument(
            std::string("Trainer: ") + what + " symbol " + std::to_string(id) +
            " is outside the initial model's " + std::to_string(num_symbols) +
            "-symbol emission alphabet (vocabulary growth needs a batch fit "
            "against a widened model)");
      }
    }
  }
}

}  // namespace

void SuffStats::reset() {
  for (std::size_t r = 0; r < transition_num.rows(); ++r) {
    auto row = transition_num.row(r);
    std::fill(row.begin(), row.end(), 0.0);
  }
  for (std::size_t r = 0; r < emission_num.rows(); ++r) {
    auto row = emission_num.row(r);
    std::fill(row.begin(), row.end(), 0.0);
  }
  std::fill(transition_den.begin(), transition_den.end(), 0.0);
  std::fill(emission_den.begin(), emission_den.end(), 0.0);
  std::fill(initial.begin(), initial.end(), 0.0);
}

void SuffStats::merge(const SuffStats& other) {
  const std::size_t n = transition_den.size();
  for (std::size_t i = 0; i < n; ++i) {
    auto dst = transition_num.row(i);
    const auto src = other.transition_num.row(i);
    for (std::size_t j = 0; j < dst.size(); ++j) dst[j] += src[j];
    auto edst = emission_num.row(i);
    const auto esrc = other.emission_num.row(i);
    for (std::size_t k = 0; k < edst.size(); ++k) edst[k] += esrc[k];
    transition_den[i] += other.transition_den[i];
    emission_den[i] += other.emission_den[i];
    initial[i] += other.initial[i];
  }
}

void TrainerState::validate() const {
  initial_model.validate();
  const std::size_t n = initial_model.num_states();
  const std::size_t m = initial_model.num_symbols();
  if (cached_count > train.size()) {
    throw std::invalid_argument(
        "TrainerState: cached_count exceeds the absorbed corpus");
  }
  if (holdout_cached > holdout.size()) {
    throw std::invalid_argument(
        "TrainerState: holdout_cached exceeds the absorbed holdout");
  }
  if (observed_prefix > cached_count) {
    throw std::invalid_argument(
        "TrainerState: observed_prefix exceeds cached_count");
  }
  if (!slot_prefix.empty()) {
    if (slot_prefix.size() != kTrainerMergeSlots) {
      throw std::invalid_argument(
          "TrainerState: slot_prefix must hold exactly " +
          std::to_string(kTrainerMergeSlots) + " merge slots");
    }
    for (const SuffStats& slot : slot_prefix) {
      if (slot.transition_num.rows() != n || slot.transition_num.cols() != n ||
          slot.emission_num.rows() != n || slot.emission_num.cols() != m ||
          slot.transition_den.size() != n || slot.emission_den.size() != n ||
          slot.initial.size() != n) {
        throw std::invalid_argument(
            "TrainerState: slot_prefix shape disagrees with initial model");
      }
    }
  } else if (cached_count != 0) {
    throw std::invalid_argument(
        "TrainerState: cached_count without slot_prefix accumulators");
  }
  check_symbol_range(train, m, "train");
  check_symbol_range(holdout, m, "holdout");
}

Trainer::Trainer(Hmm initial_model, TrainingOptions options)
    : options_(std::move(options)) {
  initial_model.validate();
  state_.initial_model = std::move(initial_model);
  state_.max_iterations = options_.max_iterations;
  state_.min_improvement = options_.min_improvement;
  state_.pseudocount = options_.pseudocount;
  state_.patience = options_.patience;
  state_.impossible_penalty = options_.impossible_penalty;
}

Trainer::Trainer(TrainerState state, TrainingOptions options)
    : options_(std::move(options)) {
  state.validate();
  state_ = std::move(state);
  // The replayed trajectory must match the one that produced the cached
  // prefix: the state's numeric knobs are authoritative, the caller only
  // supplies the runtime (exec.threads and observability sinks).
  options_.max_iterations = state_.max_iterations;
  options_.min_improvement = state_.min_improvement;
  options_.pseudocount = state_.pseudocount;
  options_.patience = state_.patience;
  options_.impossible_penalty = state_.impossible_penalty;
}

const Hmm& Trainer::model() const {
  if (!has_model_) {
    throw std::logic_error("Trainer: no model yet; call fit or partial_fit");
  }
  return model_;
}

const TrainingReport& Trainer::last_report() const {
  if (history_.empty()) {
    throw std::logic_error("Trainer: no runs yet; call fit or partial_fit");
  }
  return history_.back();
}

void Trainer::publish() const {
  if (!publish_hook_) {
    throw std::logic_error("Trainer: no publish hook installed");
  }
  if (!has_model_) {
    throw std::logic_error("Trainer: nothing to publish before fit");
  }
  publish_hook_(*this);
}

TrainingReport Trainer::fit(std::vector<ObservationSeq> corpus,
                            std::vector<ObservationSeq> holdout) {
  const std::size_t m = state_.initial_model.num_symbols();
  check_symbol_range(corpus, m, "train");
  check_symbol_range(holdout, m, "holdout");

  state_.train = std::move(corpus);
  state_.holdout = std::move(holdout);
  state_.batches.clear();
  state_.cached_count = 0;
  state_.slot_prefix.clear();
  state_.ll_sum_prefix = 0.0;
  state_.observed_prefix = 0;
  state_.holdout_cached = 0;
  state_.holdout_ll_sum = 0.0;

  TrainingReport report = run_em();

  BatchRecord batch;
  batch.id = 0;
  batch.train_count = state_.train.size();
  batch.holdout_count = state_.holdout.size();
  batch.iterations = report.iterations;
  if (!report.train_log_likelihood.empty()) {
    batch.entry_train_ll = report.train_log_likelihood.front();
    batch.final_train_ll = report.train_log_likelihood.back();
  }
  state_.batches.push_back(batch);
  history_.push_back(report);
  record_run_metrics(report, batch.train_count + batch.holdout_count);
  return report;
}

TrainingReport Trainer::partial_fit(
    const std::vector<ObservationSeq>& new_traces,
    const std::vector<ObservationSeq>& new_holdout) {
  const std::size_t m = state_.initial_model.num_symbols();
  check_symbol_range(new_traces, m, "train");
  check_symbol_range(new_holdout, m, "holdout");

  state_.train.insert(state_.train.end(), new_traces.begin(),
                      new_traces.end());
  state_.holdout.insert(state_.holdout.end(), new_holdout.begin(),
                        new_holdout.end());

  TrainingReport report = run_em();

  BatchRecord batch;
  batch.id = state_.batches.size();
  batch.train_count = new_traces.size();
  batch.holdout_count = new_holdout.size();
  batch.iterations = report.iterations;
  if (!report.train_log_likelihood.empty()) {
    batch.entry_train_ll = report.train_log_likelihood.front();
    batch.final_train_ll = report.train_log_likelihood.back();
  }
  state_.batches.push_back(batch);
  history_.push_back(report);
  record_run_metrics(report, new_traces.size() + new_holdout.size());
  return report;
}

void Trainer::record_run_metrics(const TrainingReport& report,
                                 std::size_t new_sequences) const {
  obs::MetricsRegistry* metrics = options_.exec.metrics;
  if (metrics == nullptr) return;
  metrics->counter("cmarkov_train_runs_total").add(1);
  metrics->counter("cmarkov_train_absorbed_sequences_total")
      .add(new_sequences);
  metrics->gauge("cmarkov_train_last_run_iterations")
      .set(static_cast<double>(report.iterations));
  if (report.train_log_likelihood.size() >= 2) {
    metrics->gauge("cmarkov_train_last_run_ll_delta")
        .set(report.train_log_likelihood.back() -
             report.train_log_likelihood.front());
  }
}

TrainingReport Trainer::run_em() {
  const std::vector<ObservationSeq>& sequences = state_.train;
  const std::vector<ObservationSeq>& holdout = state_.holdout;

  model_ = state_.initial_model;
  has_model_ = true;
  TrainingReport report;
  if (sequences.empty()) return report;

  const std::size_t count = sequences.size();
  const std::size_t n = model_.num_states();
  const std::size_t m = model_.num_symbols();

  WorkerPool pool(options_.exec.threads);
  HmmKernelCache cache(model_);

  // Resolve instruments once; hot-loop recording is pointer-guarded.
  obs::MetricsRegistry* metrics = options_.exec.metrics;
  obs::RunProfile* profile = options_.exec.profile;
  obs::Counter* iterations_total = nullptr;
  obs::Histogram* estep_seconds = nullptr;
  obs::Histogram* mstep_seconds = nullptr;
  obs::Gauge* ll_delta_gauge = nullptr;
  obs::Gauge* pool_utilization = nullptr;
  obs::Gauge* reuse_ratio = nullptr;
  if (metrics != nullptr) {
    iterations_total = &metrics->counter("cmarkov_train_iterations_total");
    estep_seconds = &metrics->histogram("cmarkov_train_estep_seconds",
                                        obs::seconds_bucket_bounds());
    mstep_seconds = &metrics->histogram("cmarkov_train_mstep_seconds",
                                        obs::seconds_bucket_bounds());
    ll_delta_gauge = &metrics->gauge("cmarkov_train_ll_delta");
    pool_utilization =
        &metrics->gauge("cmarkov_train_pool_utilization_ratio");
    reuse_ratio = &metrics->gauge("cmarkov_train_prefix_reuse_ratio");
  }

  // Iteration-0 prefix: how much of the corpus is already folded into the
  // cached slot accumulators (everything absorbed by earlier runs; the
  // initial model never changes, so that work is exact under replay).
  const bool have_prefix = state_.cached_count > 0 &&
                           state_.slot_prefix.size() == kTrainerMergeSlots;
  const std::size_t folded = have_prefix ? state_.cached_count : 0;
  if (reuse_ratio != nullptr) {
    reuse_ratio->set(static_cast<double>(folded) /
                     static_cast<double>(count));
  }

  // Train-set termination starts from -infinity: its score is the E-step's
  // mean log-likelihood of the model *entering* the iteration, and
  // iteration 1's score already equals the initial model's likelihood.
  // Holdout termination keeps its pre-training baseline, re-derived from
  // the cached θ₀ fold plus the not-yet-scored holdout suffix (the
  // per-sequence scores are order-independent; only the summation order
  // matters, and it is the same left fold a batch run performs).
  double best_score = -std::numeric_limits<double>::infinity();
  if (!holdout.empty()) {
    const std::size_t scored =
        std::min(state_.holdout_cached, holdout.size());
    double sum = scored > 0 ? state_.holdout_ll_sum : 0.0;
    const std::size_t pending = holdout.size() - scored;
    if (pending > 0) {
      std::vector<double> per_sequence(pending);
      pool.run(chunk_count(pending, kScoreChunk), [&](std::size_t c) {
        const ChunkRange range = chunk_range(pending, kScoreChunk, c);
        for (std::size_t i = range.begin; i < range.end; ++i) {
          const ObservationSeq& seq = holdout[scored + i];
          if (seq.empty()) {
            per_sequence[i] = options_.impossible_penalty;
            continue;
          }
          const double ll = forward_scaled(model_, seq, cache).log_likelihood;
          per_sequence[i] =
              std::isinf(ll) ? options_.impossible_penalty : ll;
        }
      });
      for (double ll : per_sequence) sum += ll;
    }
    state_.holdout_ll_sum = sum;
    state_.holdout_cached = holdout.size();
    best_score = sum / static_cast<double>(holdout.size());
  }
  std::size_t stall = 0;

  // Sequence s accumulates into slot s % kTrainerMergeSlots; each slot is
  // processed by exactly one worker in ascending-s order and slots merge
  // in index order on the calling thread, making every accumulator sum
  // independent of the thread count. Iteration 0 continues the cached
  // fold instead of starting from zero.
  std::vector<SuffStats> partial;
  if (have_prefix) {
    partial = state_.slot_prefix;
  } else {
    partial.assign(kTrainerMergeSlots, SuffStats(n, m));
  }
  SuffStats total(n, m);
  std::vector<double> per_sequence_ll(count, options_.impossible_penalty);
  std::vector<unsigned char> accepted(count, 0);

  double prev_train_mean = 0.0;
  bool have_prev_train_mean = false;

  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // Closes on every exit path out of the iteration, breaks included.
    const obs::ScopedTimer iteration_span(profile, "train-iteration");
    Stopwatch stage_watch;
    const std::size_t skip = iter == 0 ? folded : 0;
    pool.run(kTrainerMergeSlots, [&](std::size_t slot) {
      SuffStats& acc = partial[slot];
      if (skip == 0) acc.reset();
      for (std::size_t s = slot; s < count; s += kTrainerMergeSlots) {
        if (s < skip) continue;  // already in the cached fold
        double ll = options_.impossible_penalty;
        accepted[s] =
            accumulate_sequence(model_, cache, sequences[s], acc, ll) ? 1 : 0;
        per_sequence_ll[s] = accepted[s] ? ll : options_.impossible_penalty;
      }
    });
    if (pool_utilization != nullptr) {
      pool_utilization->set(pool.last_run_stats().utilization());
    }

    std::size_t observed = 0;
    double ll_sum = 0.0;
    if (iter == 0) {
      observed = have_prefix ? state_.observed_prefix : 0;
      ll_sum = have_prefix ? state_.ll_sum_prefix : 0.0;
      for (std::size_t s = skip; s < count; ++s) {
        observed += accepted[s];
        ll_sum += per_sequence_ll[s];
      }
      // Snapshot the extended fold: the next run's iteration 0 (and a
      // resumed process, via model_io) continues from exactly here.
      state_.slot_prefix = partial;
      state_.cached_count = count;
      state_.ll_sum_prefix = ll_sum;
      state_.observed_prefix = observed;
    } else {
      for (std::size_t s = 0; s < count; ++s) {
        observed += accepted[s];
        ll_sum += per_sequence_ll[s];
      }
    }
    report.skipped_sequences = count - observed;
    if (observed == 0) {
      // Model rejects everything; nothing to learn.
      const double estep_s = stage_watch.seconds();
      if (estep_seconds != nullptr) estep_seconds->record(estep_s);
      if (profile != nullptr) profile->record("e-step", estep_s);
      break;
    }

    total.reset();
    for (const SuffStats& acc : partial) total.merge(acc);

    // The E-step forward passes already produced every train-set
    // log-likelihood; reuse them instead of a second full scoring sweep.
    // (This is the likelihood of the model entering the iteration.)
    const double train_mean = ll_sum / static_cast<double>(count);
    {
      const double estep_s = stage_watch.seconds();
      if (estep_seconds != nullptr) estep_seconds->record(estep_s);
      if (profile != nullptr) profile->record("e-step", estep_s);
    }

    stage_watch.reset();
    reestimate(model_, total, options_.pseudocount, observed);
    cache.rebuild(model_);
    {
      const double mstep_s = stage_watch.seconds();
      if (mstep_seconds != nullptr) mstep_seconds->record(mstep_s);
      if (profile != nullptr) profile->record("m-step", mstep_s);
    }
    report.iterations = iter + 1;
    report.train_log_likelihood.push_back(train_mean);
    if (iterations_total != nullptr) iterations_total->add(1);
    if (ll_delta_gauge != nullptr && have_prev_train_mean) {
      ll_delta_gauge->set(train_mean - prev_train_mean);
    }
    prev_train_mean = train_mean;
    have_prev_train_mean = true;

    stage_watch.reset();
    const double score =
        holdout.empty()
            ? train_mean
            : pooled_mean_log_likelihood(model_, cache, holdout,
                                         options_.impossible_penalty, pool);
    if (!holdout.empty()) {
      report.holdout_log_likelihood.push_back(score);
      if (profile != nullptr) {
        profile->record("holdout-score", stage_watch.seconds());
      }
    }

    if (score - best_score < options_.min_improvement) {
      ++stall;
      if (stall > options_.patience) {
        report.converged = true;
        break;
      }
    } else {
      stall = 0;
    }
    if (score > best_score) best_score = score;
  }
  if (options_.exec.wants_log(LogLevel::kDebug)) {
    log_debug() << "trainer: " << report.iterations << " iteration(s)"
                << (report.converged ? ", converged" : "") << ", "
                << report.skipped_sequences << " skipped, "
                << folded << "/" << count << " iteration-0 sequences reused";
  }
  return report;
}

}  // namespace cmarkov::hmm
