#include "src/attack/rop_chain.hpp"

#include <map>

namespace cmarkov::attack {

trace::Trace build_rop_trace(const cfg::ModuleCfg& module,
                             const std::vector<PlannedCall>& calls, Rng& rng,
                             const RopChainOptions& options) {
  trace::Trace out;
  out.program = module.program_name + ":rop";

  // Address pool: every function's code range, plus an unmapped region
  // beyond the image for "missing context" gadgets.
  std::uint64_t image_end = 0;
  for (const auto& fn : module.functions) {
    image_end = std::max(image_end, fn.end_address);
  }
  const std::uint64_t unmapped_base = image_end + 0x1000000;

  // Genuine call sites by (kind, name): payload stages issued through the
  // program's own wrappers observe these legitimate addresses.
  std::map<std::pair<ir::CallKind, std::string>, std::vector<std::uint64_t>>
      real_sites;
  for (const auto& fn : module.functions) {
    for (const auto& block : fn.blocks) {
      if (const auto* call = block.external_call()) {
        real_sites[{call->kind, call->callee}].push_back(call->address);
      }
    }
  }

  for (const auto& [kind, name] : calls) {
    trace::CallEvent event;
    event.kind = kind;
    event.name = name;
    auto sites = real_sites.find({kind, name});
    if (sites != real_sites.end() &&
        rng.chance(options.reuse_legitimate_site_fraction)) {
      event.site_address = sites->second[rng.index(sites->second.size())];
    } else if (!module.functions.empty() &&
               rng.chance(options.mapped_gadget_fraction)) {
      // Gadget inside a random function: a wrong-but-plausible caller.
      const auto& fn = module.functions[rng.index(module.functions.size())];
      const std::uint64_t span =
          std::max<std::uint64_t>(fn.end_address - fn.base_address, 1);
      event.site_address =
          fn.base_address + static_cast<std::uint64_t>(rng.index(span));
    } else {
      // Gadget outside every function: symbolizes to "?".
      event.site_address =
          unmapped_base + static_cast<std::uint64_t>(rng.index(0x10000));
    }
    out.events.push_back(std::move(event));
  }
  return out;
}

namespace {

std::vector<PlannedCall> sys_calls(std::initializer_list<const char*> names) {
  std::vector<PlannedCall> out;
  for (const char* name : names) {
    out.emplace_back(ir::CallKind::kSyscall, name);
  }
  return out;
}

}  // namespace

std::vector<PlannedCall> gzip_rop_q1() {
  return sys_calls({"uname", "brk", "brk", "brk", "rt_sigaction",
                    "rt_sigaction", "rt_sigaction", "rt_sigaction",
                    "rt_sigaction", "rt_sigaction", "read", "close", "close",
                    "unlink", "chmod"});
}

std::vector<PlannedCall> gzip_rop_q2() {
  return sys_calls({"brk", "rt_sigaction", "rt_sigaction", "rt_sigaction",
                    "rt_sigaction", "rt_sigaction", "rt_sigaction",
                    "rt_sigaction", "sigaction", "sigaction", "stat",
                    "openat", "getdents", "close", "write", "read", "write",
                    "write"});
}

std::vector<PlannedCall> syscall_chain_payload() {
  return sys_calls({"mprotect", "read", "dup2", "dup2", "dup2", "execve"});
}

std::vector<PlannedCall> mimic_chain_from_trace(const trace::Trace& normal,
                                                analysis::CallFilter filter,
                                                std::size_t length,
                                                std::size_t start) {
  std::vector<PlannedCall> filtered;
  for (const auto& event : normal.events) {
    if (analysis::filter_matches(filter, event.kind)) {
      filtered.emplace_back(event.kind, event.name);
    }
  }
  if (filtered.size() < start + length) {
    throw std::invalid_argument(
        "mimic_chain_from_trace: trace too short for requested window");
  }
  return {filtered.begin() + static_cast<std::ptrdiff_t>(start),
          filtered.begin() + static_cast<std::ptrdiff_t>(start + length)};
}

}  // namespace cmarkov::attack
