// Hand-written lexer for MiniC. Tracks line/column for diagnostics and for
// the line-coverage measurements of Table I.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "src/ir/token.hpp"

namespace cmarkov::ir {

/// Error raised by the lexer and parser on malformed source.
class SyntaxError : public std::runtime_error {
 public:
  SyntaxError(const std::string& message, int line, int column);

  int line() const { return line_; }
  int column() const { return column_; }

 private:
  int line_;
  int column_;
};

/// Tokenizes an entire MiniC source buffer. The returned vector always ends
/// with a kEnd token. Supports '//' line comments.
std::vector<Token> tokenize(std::string_view source);

}  // namespace cmarkov::ir
