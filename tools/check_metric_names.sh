#!/usr/bin/env sh
# Lints every metric registered in src/ against the naming convention
# documented in docs/OBSERVABILITY.md:
#   - names start with "cmarkov_" and use only [a-zA-Z0-9_:];
#   - counters end in "_total", or "_total_w<i>" for per-worker/per-loop
#     sharded counters (the admin plane's /statusz instruments);
#   - histograms end in a unit suffix (_seconds, _micros, _bytes);
#   - gauges end in a unit suffix or one of the allowlisted dimensionless
#     kinds (_ratio, _open, _calls, _states, _clusters, _components,
#     _inertia, _delta, _level, _iterations) or the per-worker "_w<i>"
#     index suffix.
#
# The check is a line-based grep over registration call sites, so the
# instrument name literal must sit on the same line as its
# counter(/gauge(/histogram( call.
#
# Wired into CTest as `check_metric_names` (label: obs).
set -eu

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

matches="$(grep -rnoE '(counter|gauge|histogram)\([[:space:]]*"[^"]*"' \
  "$repo_root/src" --include='*.cpp' --include='*.hpp' || true)"

if [ -z "$matches" ]; then
  echo "error: no metric registrations found; the grep pattern has rotted" >&2
  exit 1
fi

printf '%s\n' "$matches" | awk '
{
  if (!match($0, /(counter|gauge|histogram)\([[:space:]]*"[^"]*"/)) next;
  call = substr($0, RSTART, RLENGTH);
  loc = substr($0, 1, RSTART - 1);
  sub(/:$/, "", loc);
  kind = substr(call, 1, index(call, "(") - 1);
  q = index(call, "\"");
  name = substr(call, q + 1, length(call) - q - 1);
  total += 1;

  if (name !~ /^cmarkov_[a-zA-Z0-9_:]+$/) {
    print loc ": " kind " \"" name "\" must start with cmarkov_ and use only [a-zA-Z0-9_:]";
    bad += 1;
  } else if (kind == "counter" && name !~ /(_total|_total_w[0-9]*)$/) {
    print loc ": counter \"" name "\" must end in _total (or _total_w<i> per shard/loop)";
    bad += 1;
  } else if (kind == "histogram" && name !~ /(_seconds|_micros|_bytes)$/) {
    print loc ": histogram \"" name "\" must end in a unit suffix (_seconds|_micros|_bytes)";
    bad += 1;
  } else if (kind == "gauge" && name !~ /(_seconds|_micros|_bytes|_ratio|_open|_calls|_states|_clusters|_components|_inertia|_delta|_level|_iterations|_w[0-9]*)$/) {
    print loc ": gauge \"" name "\" must end in a unit or allowlisted kind suffix";
    bad += 1;
  }
}
END {
  if (bad > 0) exit 1;
  print "ok: " total " metric name(s) follow the naming convention";
}
'
