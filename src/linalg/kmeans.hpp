// K-means clustering (Lloyd's algorithm with k-means++ seeding).
// Used to merge similar context-sensitive calls before HMM state
// initialization (Section III-C, Algorithm 1).
#pragma once

#include <cstddef>
#include <vector>

#include "src/linalg/matrix.hpp"
#include "src/util/exec_context.hpp"
#include "src/util/rng.hpp"

namespace cmarkov {

struct KMeansOptions {
  std::size_t max_iterations = 100;
  /// Stop when no assignment changes between iterations.
  /// Additionally stop when total centroid movement drops below this.
  double movement_tolerance = 1e-9;
  /// Independent restarts; the run with lowest inertia wins.
  std::size_t restarts = 3;
  /// Execution context: exec.threads drives the assignment/seeding distance
  /// sweeps (0 = one per hardware core). Results are identical at any
  /// value: per-sample work is independent and reductions merge fixed-size
  /// chunks in index order. (The RNG stays an explicit kmeans() parameter.)
  ExecContext exec;
};

struct KMeansResult {
  /// assignment[i] = cluster id of sample i, in [0, k).
  std::vector<std::size_t> assignment;
  /// k x dim centroid matrix.
  Matrix centroids;
  /// Sum of squared distances of samples to their centroid.
  double inertia = 0.0;
  std::size_t iterations = 0;
};

/// Clusters the rows of `samples` into k groups. Requires 1 <= k <=
/// samples.rows(). Every cluster is guaranteed non-empty (empty clusters are
/// re-seeded with the farthest sample).
KMeansResult kmeans(const Matrix& samples, std::size_t k, Rng& rng,
                    const KMeansOptions& options = {});

}  // namespace cmarkov
