// [SYSCALL...RET] gadget census (Section V-D / Table III).
//
// A useful gadget is a straight-line instruction window that executes a
// syscall and then returns control to the chain: it starts at a SYSCALL
// instruction, ends at the first following RET, spans at most `max_length`
// instructions, and contains no intervening control transfer (call / jump /
// branch / ret) that would wrest control from the ROP chain.
//
// Context-sensitive detection shrinks the census further: a gadget only
// helps an attacker *under CMarkov monitoring* if the (syscall name @
// containing function) pair it produces is one the behaviour model accepts
// as legitimate. count() reports both the raw census and the
// context-compatible subset — the paper's argument that surviving gadgets
// are far from Turing-complete.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "src/attack/abnormal_s.hpp"
#include "src/gadget/binary_image.hpp"
#include "src/trace/symbolizer.hpp"

namespace cmarkov::gadget {

struct GadgetCounts {
  /// All [SYSCALL...RET] windows within the length bound.
  std::size_t raw = 0;
  /// Subset whose syscall would symbolize to a legitimate (name, caller)
  /// pair of the program's behaviour model.
  std::size_t context_compatible = 0;
};

struct Gadget {
  std::uint64_t syscall_address = 0;
  std::uint64_t ret_address = 0;
  std::size_t length = 0;  // instructions, syscall..ret inclusive
  std::string syscall_name;  // "" for unintended decodings
};

/// Enumerates all gadgets within `max_length`.
std::vector<Gadget> find_syscall_ret_gadgets(const BinaryImage& image,
                                             std::size_t max_length);

/// Counts gadgets; `symbolizer` may be null (library images without mapped
/// functions), in which case no gadget is context-compatible.
GadgetCounts count_gadgets(
    const BinaryImage& image, std::size_t max_length,
    const trace::Symbolizer* symbolizer,
    const std::set<attack::LegitimateCall>& legitimate);

}  // namespace cmarkov::gadget
