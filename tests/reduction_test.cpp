// Unit tests for Definition 6 call-transition vectors, clustering-based
// state reduction and the reduced-model reconstruction (Algorithm 1).
#include <gtest/gtest.h>

#include "src/analysis/aggregation.hpp"
#include "src/cfg/cfg_builder.hpp"
#include "src/ir/module.hpp"
#include "src/reduction/call_vector.hpp"
#include "src/reduction/cluster_calls.hpp"
#include "src/reduction/reconstruct.hpp"

namespace cmarkov::reduction {
namespace {

using analysis::CallSymbol;

analysis::CallTransitionMatrix program_matrix(const char* source) {
  const auto module =
      cfg::build_module_cfg(ir::ProgramModule::from_source("t", source));
  const auto graph = cfg::CallGraph::build(module);
  static const analysis::UniformBranchHeuristic heuristic;
  return analysis::aggregate_program(module, graph, heuristic)
      .program_matrix;
}

TEST(CallVectorTest, DefinitionSixShape) {
  // Def. 6: vector of call c has size 2n (outgoing row ++ incoming column).
  const auto m = program_matrix("fn main() { sys(\"a\"); sys(\"b\"); }");
  const CallVectors vectors = build_call_vectors(m);
  ASSERT_EQ(vectors.calls.size(), 2u);
  EXPECT_EQ(vectors.features.cols(), 2 * m.size());
  EXPECT_EQ(vectors.features.rows(), 2u);
}

TEST(CallVectorTest, RowHoldsOutgoingThenIncoming) {
  const auto m = program_matrix("fn main() { sys(\"a\"); sys(\"b\"); }");
  const CallVectors vectors = build_call_vectors(m);
  const std::size_t n = m.size();
  for (std::size_t r = 0; r < vectors.calls.size(); ++r) {
    const std::size_t idx = m.index_of(vectors.calls[r]);
    for (std::size_t c = 0; c < n; ++c) {
      EXPECT_DOUBLE_EQ(vectors.features(r, c), m.prob(idx, c));
      EXPECT_DOUBLE_EQ(vectors.features(r, n + c), m.prob(c, idx));
    }
  }
}

TEST(ClusterCallsTest, BelowThresholdYieldsSingletons) {
  const auto m =
      program_matrix("fn main() { sys(\"a\"); sys(\"b\"); sys(\"c\"); }");
  Rng rng(1);
  ClusteringOptions options;  // default threshold 800 >> 3 calls
  const CallClustering clustering = cluster_calls(m, rng, options);
  EXPECT_FALSE(clustering.reduced);
  EXPECT_EQ(clustering.clusters.size(), 3u);
  for (const auto& cluster : clustering.clusters) {
    EXPECT_EQ(cluster.size(), 1u);
  }
}

TEST(ClusterCallsTest, ForcedClusteringReducesToTargetFraction) {
  // 12 distinct calls in a chain; force clustering with k = n/3.
  std::string source = "fn main() {";
  for (int i = 0; i < 12; ++i) {
    source += " sys(\"c" + std::to_string(i) + "\");";
  }
  source += " }";
  const auto m = program_matrix(source.c_str());
  Rng rng(2);
  ClusteringOptions options;
  options.min_calls_for_reduction = 0;
  const CallClustering clustering = cluster_calls(m, rng, options);
  EXPECT_TRUE(clustering.reduced);
  EXPECT_EQ(clustering.clusters.size(), 4u);  // 12 / 3
  // Every call assigned exactly once.
  std::size_t members = 0;
  for (const auto& cluster : clustering.clusters) members += cluster.size();
  EXPECT_EQ(members, 12u);
}

TEST(ClusterCallsTest, SimilarCallsClusterTogether) {
  // Two groups with identical transition behaviour: branches make a1/a2
  // interchangeable, likewise b1/b2; the end call is distinct.
  const auto m = program_matrix(R"(
fn main() {
  if (input()) { sys("a1"); } else { sys("a2"); }
  if (input()) { sys("b1"); } else { sys("b2"); }
  sys("end");
}
)");
  Rng rng(3);
  ClusteringOptions options;
  options.min_calls_for_reduction = 0;
  options.k = 3;
  const CallClustering clustering = cluster_calls(m, rng, options);
  ASSERT_EQ(clustering.clusters.size(), 3u);

  auto cluster_of = [&](const std::string& name) {
    for (std::size_t i = 0; i < clustering.calls.size(); ++i) {
      if (clustering.calls[i].name == name) return clustering.assignment[i];
    }
    ADD_FAILURE() << "missing call " << name;
    return std::size_t{0};
  };
  EXPECT_EQ(cluster_of("a1"), cluster_of("a2"));
  EXPECT_EQ(cluster_of("b1"), cluster_of("b2"));
  EXPECT_NE(cluster_of("a1"), cluster_of("b1"));
  EXPECT_NE(cluster_of("end"), cluster_of("a1"));
}

TEST(ClusterCallsTest, PcaTogglesAndRecordsDimensions) {
  std::string source = "fn main() {";
  for (int i = 0; i < 9; ++i) {
    source += " sys(\"c" + std::to_string(i) + "\");";
  }
  source += " }";
  const auto m = program_matrix(source.c_str());
  Rng rng(4);
  ClusteringOptions with_pca;
  with_pca.min_calls_for_reduction = 0;
  with_pca.use_pca = true;
  const auto clustered = cluster_calls(m, rng, with_pca);
  EXPECT_GT(clustered.pca_dimensions, 0u);
  EXPECT_LE(clustered.pca_dimensions, 2 * m.size());

  ClusteringOptions without_pca = with_pca;
  without_pca.use_pca = false;
  const auto unprojected = cluster_calls(m, rng, without_pca);
  EXPECT_EQ(unprojected.pca_dimensions, 0u);
  EXPECT_TRUE(unprojected.reduced);
}

TEST(IdentityClusteringTest, OneClusterPerCall) {
  const auto m = program_matrix("fn main() { sys(\"a\"); lib(\"b\"); }");
  const CallClustering clustering = identity_clustering(m);
  EXPECT_EQ(clustering.clusters.size(), 2u);
  EXPECT_FALSE(clustering.reduced);
}

TEST(ReconstructTest, IdentityReductionPreservesTransitions) {
  const auto m = program_matrix(R"(
fn main() {
  if (input()) { sys("a"); } else { sys("b"); }
  sys("c");
}
)");
  const ReducedModel model =
      reconstruct_reduced_model(m, identity_clustering(m));
  ASSERT_EQ(model.num_states(), 3u);

  auto state_of = [&](const std::string& name) {
    for (std::size_t s = 0; s < model.members.size(); ++s) {
      if (model.members[s][0].name == name) return s;
    }
    ADD_FAILURE() << "missing state " << name;
    return std::size_t{0};
  };
  const auto a = state_of("a");
  const auto b = state_of("b");
  const auto c = state_of("c");
  EXPECT_DOUBLE_EQ(model.entry_mass[a], 0.5);
  EXPECT_DOUBLE_EQ(model.entry_mass[b], 0.5);
  EXPECT_DOUBLE_EQ(model.transitions(a, c), 0.5);
  EXPECT_DOUBLE_EQ(model.transitions(b, c), 0.5);
  EXPECT_DOUBLE_EQ(model.exit_mass[c], 1.0);
  // Singleton members carry full emission weight.
  EXPECT_DOUBLE_EQ(model.member_weights[a][0], 1.0);
}

TEST(ReconstructTest, MergedClusterSumsMassAndWeightsMembers) {
  const auto m = program_matrix(R"(
fn main() {
  if (input()) { sys("a1"); } else { sys("a2"); }
  sys("c");
}
)");
  // Force a1+a2 into one cluster by hand.
  CallClustering clustering = identity_clustering(m);
  ASSERT_EQ(clustering.calls.size(), 3u);
  for (std::size_t i = 0; i < clustering.calls.size(); ++i) {
    clustering.assignment[i] = clustering.calls[i].name == "c" ? 1 : 0;
  }
  clustering.clusters.assign(2, {});
  for (std::size_t i = 0; i < clustering.assignment.size(); ++i) {
    clustering.clusters[clustering.assignment[i]].push_back(i);
  }

  const ReducedModel model = reconstruct_reduced_model(m, clustering);
  ASSERT_EQ(model.num_states(), 2u);
  EXPECT_DOUBLE_EQ(model.entry_mass[0], 1.0);       // 0.5 + 0.5
  EXPECT_DOUBLE_EQ(model.transitions(0, 1), 1.0);   // both halves into c
  ASSERT_EQ(model.member_weights[0].size(), 2u);
  EXPECT_NEAR(model.member_weights[0][0] + model.member_weights[0][1], 1.0,
              1e-12);
}

TEST(ReconstructTest, RejectsUnresolvedInternalSymbols) {
  analysis::CallTransitionMatrix m;
  m.add_symbol(CallSymbol::entry("f"));
  m.add_symbol(CallSymbol::exit("f"));
  m.add_symbol(CallSymbol::external(ir::CallKind::kSyscall, "a", "f"));
  m.add_symbol(CallSymbol::internal("g"));
  const CallClustering clustering = identity_clustering(m);
  EXPECT_THROW(reconstruct_reduced_model(m, clustering),
               std::invalid_argument);
}

}  // namespace
}  // namespace cmarkov::reduction
