// Table I: programs, test-case counts and branch/line coverage of the
// normal-trace workloads (paper: SIR test suites; here: the seeded
// test-case generators — see DESIGN.md substitutions).
#include <cstdio>
#include <iostream>

#include "src/eval/comparison.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

int main(int argc, char** argv) {
  const bool full = eval::full_mode_enabled(argc, argv);
  std::cout << "=== Table I: test cases and coverage per program ("
            << (full ? "full" : "quick") << " mode) ===\n";
  std::cout << "Paper reference (SIR suites): flex 325 / grep 809 / gzip 214"
               " / sed 370 / bash 1061 / vim 936 test cases,\n"
               "branch coverage 31.3-98.7% (avg 67.0%), line coverage"
               " 41.3-76.0% (avg 63.9%).\n\n";

  TablePrinter table({"Program", "# of test cases", "Branch coverage",
                      "Line coverage", "Functions", "Source lines",
                      "Trace events"});

  double branch_sum = 0.0;
  double line_sum = 0.0;
  std::size_t case_sum = 0;
  std::size_t rows = 0;

  for (const auto& name : workload::utility_suite_names()) {
    const workload::ProgramSuite suite = workload::make_suite(name);
    const std::size_t cases =
        full ? suite.info().paper_test_cases
             : std::max<std::size_t>(20, suite.info().paper_test_cases / 20);
    const workload::TraceCollection collection =
        workload::collect_traces(suite, cases, 42);

    branch_sum += collection.coverage.branch_coverage();
    line_sum += collection.coverage.line_coverage();
    case_sum += cases;
    ++rows;

    table.add_row(
        {name, std::to_string(cases),
         format_double(collection.coverage.branch_coverage() * 100.0, 1) + "%",
         format_double(collection.coverage.line_coverage() * 100.0, 1) + "%",
         std::to_string(suite.module().stats().functions),
         std::to_string(suite.module().stats().source_lines),
         std::to_string(collection.total_events)});
  }
  table.add_row(
      {"Average", std::to_string(case_sum / rows),
       format_double(branch_sum / static_cast<double>(rows) * 100.0, 1) + "%",
       format_double(line_sum / static_cast<double>(rows) * 100.0, 1) + "%",
       "", "", ""});
  table.print();

  std::cout << "\nNote: the synthetic programs are smaller than the real\n"
               "binaries, so generated workloads saturate coverage faster\n"
               "than SIR suites do; the role of the column (how completely\n"
               "training data exercises the program) is preserved.\n";
  return 0;
}
