// Tests for the public Detector facade: build/train/classify lifecycle and
// detection of context-violating attacks.
#include <gtest/gtest.h>

#include <cmath>

#include "src/attack/exploit_driver.hpp"
#include "src/core/detector.hpp"
#include "src/core/scoring_kernel.hpp"
#include "src/workload/testcase_generator.hpp"

namespace cmarkov::core {
namespace {

struct Fixture {
  workload::ProgramSuite suite = workload::make_gzip_suite();
  workload::TraceCollection collection =
      workload::collect_traces(suite, 30, 77);
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

DetectorConfig quick_config() {
  DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 8;
  config.target_fp = 0.01;
  return config;
}

TEST(DetectorTest, BuildProducesUntrainedModel) {
  const Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  EXPECT_FALSE(detector.trained());
  EXPECT_GT(detector.num_states(), 0u);
  EXPECT_NO_THROW(detector.model().validate());
  EXPECT_GT(detector.build_timings().total("probability"), 0.0);
}

TEST(DetectorTest, ClassifyBeforeTrainingThrows) {
  const Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  EXPECT_THROW(detector.classify(fixture().collection.traces.front()),
               std::logic_error);
}

TEST(DetectorTest, TrainCalibratesThreshold) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  const auto report = detector.train(fixture().collection.traces);
  EXPECT_TRUE(detector.trained());
  EXPECT_GE(report.iterations, 1u);
  EXPECT_TRUE(std::isfinite(detector.threshold()));
}

TEST(DetectorTest, NormalTracesMostlyPass) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto fresh = workload::collect_traces(fixture().suite, 10, 555);
  std::size_t flagged_segments = 0;
  std::size_t total_segments = 0;
  for (const auto& trace : fresh.traces) {
    const TraceVerdict verdict = detector.classify(trace);
    flagged_segments += verdict.flagged_segments;
    total_segments += verdict.total_segments;
  }
  ASSERT_GT(total_segments, 0u);
  // Segment-level FP should be in the vicinity of the calibration target.
  EXPECT_LT(static_cast<double>(flagged_segments) /
                static_cast<double>(total_segments),
            0.1);
}

TEST(DetectorTest, DetectsRopAttacks) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto attacks =
      attack::build_attack_traces(fixture().suite, attack::gzip_payloads(),
                                  1234);
  ASSERT_FALSE(attacks.empty());
  for (const auto& attack : attacks) {
    const TraceVerdict verdict = detector.classify(attack.trace);
    EXPECT_TRUE(verdict.anomalous) << attack.payload_name;
    // At least one segment should be impossible (unknown context).
    bool unknown = false;
    for (const auto& sv : verdict.segments) {
      unknown = unknown || sv.unknown_symbol;
    }
    EXPECT_TRUE(unknown) << attack.payload_name;
  }
}

TEST(DetectorTest, ScoreReturnsMinSegmentLogLikelihood) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto& trace = fixture().collection.traces.front();
  const TraceVerdict verdict = detector.classify(trace);
  EXPECT_DOUBLE_EQ(detector.score(trace), verdict.min_log_likelihood);
}

TEST(DetectorTest, ThresholdOverrideChangesVerdicts) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto& trace = fixture().collection.traces.front();
  detector.set_threshold(-std::numeric_limits<double>::infinity());
  EXPECT_FALSE(detector.classify(trace).anomalous);
  detector.set_threshold(std::numeric_limits<double>::infinity());
  EXPECT_TRUE(detector.classify(trace).anomalous);
}

TEST(DetectorTest, ContextInsensitiveVariantBuilds) {
  DetectorConfig config = quick_config();
  config.pipeline.context_sensitive = false;
  Detector detector = Detector::build(fixture().suite.module(), config);
  detector.train(fixture().collection.traces);
  const auto verdict = detector.classify(fixture().collection.traces[1]);
  EXPECT_GT(verdict.total_segments, 0u);
}

TEST(DetectorTest, ExplainSegmentAttributesStates) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  ASSERT_FALSE(detector.state_labels().empty());

  // A known-good segment decodes to a full path of labeled states.
  const auto& trace = fixture().collection.traces.front();
  hmm::ObservationSeq encoded;
  for (const auto& event : trace.events) {
    if (event.kind != ir::CallKind::kSyscall) continue;
    const auto id = detector.alphabet().find(
        hmm::encode_observation(event.name, event.caller,
                                hmm::ObservationEncoding::kContextSensitive));
    ASSERT_TRUE(id.has_value());
    encoded.push_back(*id);
    if (encoded.size() == 15) break;
  }
  ASSERT_EQ(encoded.size(), 15u);
  const auto path = detector.explain_segment(encoded);
  ASSERT_EQ(path.size(), 15u);
  // The decoded states should mostly be the states whose labels match the
  // observations (near-deterministic emissions after static init).
  std::size_t matching = 0;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == detector.alphabet().name(encoded[i])) ++matching;
  }
  EXPECT_GT(matching, 10u);

  // Unknown observations yield an empty explanation.
  hmm::ObservationSeq unknown = encoded;
  unknown[3] = detector.alphabet().size();
  EXPECT_TRUE(detector.explain_segment(unknown).empty());
}

TEST(DetectorTest, TrainOnEmptyTracesThrows) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  EXPECT_THROW(detector.train({}), std::invalid_argument);
}

/// Every complete sliding window of the given traces, encoded through the
/// detector's alphabet exactly as the serving tier would (unknowns map to
/// alphabet().size(), the shared sentinel).
std::vector<hmm::ObservationSeq> sliding_windows(
    const Detector& detector, const workload::TraceCollection& collection) {
  const auto& config = detector.config();
  const auto encoding = config.pipeline.context_sensitive
                            ? hmm::ObservationEncoding::kContextSensitive
                            : hmm::ObservationEncoding::kContextFree;
  const std::size_t length = config.segments.length;
  std::vector<hmm::ObservationSeq> windows;
  for (const auto& trace : collection.traces) {
    hmm::ObservationSeq ids;
    for (const auto& event : trace.events) {
      if (!analysis::filter_matches(config.pipeline.filter, event.kind)) {
        continue;
      }
      const std::string obs =
          hmm::encode_observation(event.name, event.caller, encoding);
      ids.push_back(
          detector.alphabet().find(obs).value_or(detector.alphabet().size()));
    }
    for (std::size_t start = 0; start + length <= ids.size(); ++start) {
      windows.emplace_back(ids.begin() + start, ids.begin() + start + length);
    }
  }
  return windows;
}

TEST(DetectorTest, ScoringKernelBitIdenticalToReferenceForward) {
  // The compiled kernel performs the same floating-point operations in the
  // same order as hmm::forward_scaled, so its window log-likelihoods must
  // be EXACTLY equal to Detector::score_segment — for context-sensitive
  // and context-free models, and for windows holding the unknown sentinel.
  for (const bool context_sensitive : {true, false}) {
    DetectorConfig config = quick_config();
    config.pipeline.context_sensitive = context_sensitive;
    Detector detector = Detector::build(fixture().suite.module(), config);
    detector.train(fixture().collection.traces);
    const auto kernel = ScoringKernel::compile(detector);
    EXPECT_EQ(kernel->num_states(), detector.model().num_states());
    EXPECT_EQ(kernel->num_symbols(), detector.model().num_symbols());
    EXPECT_EQ(kernel->threshold(), detector.threshold());
    EXPECT_EQ(kernel->context_sensitive(), context_sensitive);
    EXPECT_FALSE(kernel->pruned());  // pruning is never implicit

    auto windows = sliding_windows(
        detector, workload::collect_traces(fixture().suite, 5, 501));
    ASSERT_GT(windows.size(), 20u);
    // Force the -inf branch into the comparison set too.
    windows.push_back(windows.front());
    windows.back()[7] = detector.alphabet().size();

    KernelScratch scratch;
    for (const auto& window : windows) {
      const SegmentVerdict ref = detector.score_segment(window);
      const SegmentVerdict fast = kernel->score_window(window, scratch);
      EXPECT_EQ(ref.log_likelihood, fast.log_likelihood);  // exact bits
      EXPECT_EQ(ref.flagged, fast.flagged);
      EXPECT_EQ(ref.unknown_symbol, fast.unknown_symbol);
    }
  }
}

TEST(DetectorTest, ScoringKernelInternsLikeTheAlphabet) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto kernel = ScoringKernel::compile(detector);
  EXPECT_EQ(kernel->unknown_id(), detector.alphabet().size());
  // Piecewise name/caller hashing must agree with the alphabet lookup of
  // the rendered observation string for every event — including calls the
  // model never saw (both sides return the unknown sentinel).
  auto fresh = workload::collect_traces(fixture().suite, 3, 313);
  trace::CallEvent unseen;
  unseen.kind = ir::CallKind::kSyscall;
  unseen.name = "__not_in_any_profile__";
  unseen.caller = "nowhere";
  fresh.traces.front().events.push_back(unseen);
  for (const auto& trace : fresh.traces) {
    for (const auto& event : trace.events) {
      const std::string obs = hmm::encode_observation(
          event.name, event.caller,
          hmm::ObservationEncoding::kContextSensitive);
      const std::size_t expected =
          detector.alphabet().find(obs).value_or(detector.alphabet().size());
      EXPECT_EQ(kernel->find_observation(event.name, event.caller), expected);
      EXPECT_EQ(kernel->find_symbol(obs), expected);
    }
  }
}

TEST(DetectorTest, PrunedKernelIsMonotoneAndGuarded) {
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  detector.train(fixture().collection.traces);
  const auto exact = ScoringKernel::compile(detector);
  KernelOptions options;
  options.prune = true;
  options.prune_epsilon = 1e-4;
  options.top_k = 8;
  const auto pruned = ScoringKernel::compile(detector, options);
  EXPECT_TRUE(pruned->pruned());
  EXPECT_GT(pruned->pruned_entries(), 0u);
  EXPECT_GT(pruned->max_dropped_mass(), 0.0);
  EXPECT_LT(pruned->image_bytes(), 2 * exact->image_bytes());

  // Pruning only removes path probability, so LL_pruned <= LL_exact holds
  // unconditionally (there is no unconditional LOWER bound on the deficit;
  // see ScoringKernel::max_dropped_mass and DESIGN.md).
  const auto windows = sliding_windows(
      detector, workload::collect_traces(fixture().suite, 4, 99));
  ASSERT_GT(windows.size(), 20u);
  KernelScratch scratch;
  for (const auto& window : windows) {
    const double ll_exact = exact->score_window(window, scratch).log_likelihood;
    const double ll_pruned =
        pruned->score_window(window, scratch).log_likelihood;
    EXPECT_LE(ll_pruned, ll_exact);
  }

  // Degenerate configurations are rejected at compile time, not at score
  // time: pruning away every transition, and negative epsilons.
  KernelOptions absurd;
  absurd.prune = true;
  absurd.prune_epsilon = 1.0;
  EXPECT_THROW(ScoringKernel::compile(detector, absurd),
               std::invalid_argument);
  KernelOptions negative;
  negative.prune = true;
  negative.prune_epsilon = -1.0;
  EXPECT_THROW(ScoringKernel::compile(detector, negative),
               std::invalid_argument);
  // And the serve tier never compiles against an untrained detector.
  const Detector untrained =
      Detector::build(fixture().suite.module(), quick_config());
  EXPECT_THROW(ScoringKernel::compile(untrained), std::invalid_argument);
}

TEST(DetectorTest, DynamicOnlySymbolsExtendEmission) {
  // Train with traces containing symbols the static model never saw: the
  // emission matrix must widen to cover them.
  Detector detector =
      Detector::build(fixture().suite.module(), quick_config());
  const std::size_t before = detector.model().num_symbols();
  auto traces = fixture().collection.traces;
  trace::CallEvent weird;
  weird.kind = ir::CallKind::kSyscall;
  weird.name = "exotic_syscall";
  weird.caller = "main";
  for (int i = 0; i < 20; ++i) traces[0].events.push_back(weird);
  detector.train(traces);
  EXPECT_GT(detector.model().num_symbols(), before);
  EXPECT_NO_THROW(detector.model().validate());
}

}  // namespace
}  // namespace cmarkov::core
