#include "src/serve/session_manager.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "src/serve/drift_monitor.hpp"
#include "src/util/failpoint.hpp"
#include "src/util/logging.hpp"

namespace cmarkov::serve {

namespace {
/// Items a worker moves out of its queue per lock acquisition.
constexpr std::size_t kBatchSize = 64;
/// Worker epoch stamp meaning "not inside a scoring batch" — such a worker
/// holds no registry-derived detector reference of its own, so it never
/// constrains retired-model reclamation.
constexpr std::uint64_t kEpochIdle = std::numeric_limits<std::uint64_t>::max();
/// Resident sessions probed per eviction round. Redis-style approximate
/// LRU: with more residents than this we sample instead of scanning, and
/// with at most this many the scan is exhaustive (exact LRU — what the
/// lifecycle tests rely on).
constexpr std::size_t kEvictionProbes = 8;
}  // namespace

const char* backpressure_policy_name(BackpressurePolicy policy) {
  switch (policy) {
    case BackpressurePolicy::kBlock:
      return "block";
    case BackpressurePolicy::kDropOldest:
      return "drop-oldest";
    case BackpressurePolicy::kReject:
      return "reject";
  }
  return "?";
}

std::optional<BackpressurePolicy> parse_backpressure_policy(
    std::string_view name) {
  if (name == "block") return BackpressurePolicy::kBlock;
  if (name == "drop-oldest") return BackpressurePolicy::kDropOldest;
  if (name == "reject") return BackpressurePolicy::kReject;
  return std::nullopt;
}

struct SessionManager::Session {
  Session(std::string id, std::string model_name, VersionedModel model,
          std::size_t shard, core::MonitorOptions options,
          core::MonitorStorage storage)
      : id(std::move(id)),
        model_name(std::move(model_name)),
        shard(shard),
        options(options),
        detector(std::move(model.detector)),
        model_version(model.version),
        model_fingerprint(model.fingerprint),
        monitor(*detector, nullptr, options, std::move(storage),
                std::move(model.kernel)) {}

  const std::string id;
  const std::string model_name;
  const std::size_t shard;
  const core::MonitorOptions options;

  std::atomic<std::uint64_t> enqueued{0};
  std::atomic<std::uint64_t> processed{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> rejected{0};
  /// Queued events discarded because the session was evicted.
  std::atomic<std::uint64_t> evicted_dropped{0};
  /// Events queued or scoring right now. Eviction waits for zero before
  /// freezing the monitor, so no event ever races a snapshot.
  std::atomic<std::uint64_t> pending{0};
  /// Activity tick of the last submit (LRU ordering for eviction).
  std::atomic<std::uint64_t> last_active{0};

  /// Set under the shard worker's mu when the session is evicted. A
  /// producer that still holds this (stale) object re-resolves through the
  /// snapshot store instead of queueing into a frozen session.
  bool evicted = false;

  /// Position in SessionManager::session_list_ (guarded by sessions_mu_).
  std::size_t list_index = 0;
  /// monitor.state_bytes() as last accounted into state_bytes_sum_.
  /// Written on lifecycle transitions and reloads; atomic so the gauge
  /// refresh and shard_status() can read it under only sessions_mu_.
  std::atomic<std::size_t> state_bytes{0};

  /// Relaxed mirror of monitor.stats(), refreshed by the owning worker
  /// after every event. Stats snapshots try-lock monitor_mu and fall back
  /// to this, so a scrape never waits on a scoring batch (at worst it
  /// reports the state as of the previous event).
  struct StatsCache {
    std::atomic<std::size_t> events_seen{0};
    std::atomic<std::size_t> events_observed{0};
    std::atomic<std::size_t> windows_scored{0};
    std::atomic<std::size_t> windows_flagged{0};
    std::atomic<std::size_t> alarms{0};
  };
  StatsCache stats_cache;

  void store_stats_cache(const core::MonitorStats& s) {
    stats_cache.events_seen.store(s.events_seen, std::memory_order_relaxed);
    stats_cache.events_observed.store(s.events_observed,
                                      std::memory_order_relaxed);
    stats_cache.windows_scored.store(s.windows_scored,
                                     std::memory_order_relaxed);
    stats_cache.windows_flagged.store(s.windows_flagged,
                                      std::memory_order_relaxed);
    stats_cache.alarms.store(s.alarms, std::memory_order_relaxed);
  }
  core::MonitorStats load_stats_cache() const {
    core::MonitorStats s;
    s.events_seen = stats_cache.events_seen.load(std::memory_order_relaxed);
    s.events_observed =
        stats_cache.events_observed.load(std::memory_order_relaxed);
    s.windows_scored =
        stats_cache.windows_scored.load(std::memory_order_relaxed);
    s.windows_flagged =
        stats_cache.windows_flagged.load(std::memory_order_relaxed);
    s.alarms = stats_cache.alarms.load(std::memory_order_relaxed);
    return s;
  }

  /// Guards `monitor` and the model binding below: held by the owning
  /// worker while scoring, by stats readers while snapshotting, and by
  /// reload_model while rebinding (uncontended in steady state — one
  /// worker owns the session's shard).
  mutable std::mutex monitor_mu;
  /// Current binding; keeps the detector alive across registry hot-swaps.
  /// The compiled ScoringKernel is pinned by the monitor itself
  /// (monitor.kernel()) — one shared image per model version.
  std::shared_ptr<const core::Detector> detector;
  std::uint64_t model_version;
  std::uint64_t model_fingerprint;
  core::OnlineMonitor monitor;
};

struct SessionManager::Item {
  std::shared_ptr<Session> session;
  trace::CallEvent event;
  double enqueue_micros = 0.0;
  /// Protocol tid= value; stamped into any decision record produced.
  std::string trace_id;
  /// Admitted by the tracer's sampling guard at submit time.
  bool traced = false;
  /// Correlates this event's queue/score/reply spans.
  std::uint64_t seq = 0;
};

struct SessionManager::Worker {
  /// This worker's shard index (set once at construction).
  std::size_t index = 0;
  /// Mirror of queue.size(), updated alongside every queue mutation:
  /// queue-depth reads (gauges, /statusz, ServiceMetrics) cost one relaxed
  /// load instead of taking every worker's mutex.
  std::atomic<std::size_t> depth{0};
  mutable std::mutex mu;
  std::condition_variable cv_nonempty;  // producer -> worker
  std::condition_variable cv_space;     // worker -> blocked producers
  std::condition_variable cv_idle;      // worker -> drain()
  std::deque<Item> queue;
  std::size_t in_flight = 0;  // items popped but not yet processed
  bool stop = false;
  /// Registry reload epoch observed when the current scoring batch began;
  /// kEpochIdle between batches. reload_model takes the minimum across
  /// workers to prove no one can still be reading a retired model.
  std::atomic<std::uint64_t> active_epoch{kEpochIdle};
  std::thread thread;
};

SessionManager::SessionManager(ModelRegistry& registry, ServiceConfig config)
    : registry_(registry),
      config_(config),
      snapshots_(config.snapshot_dir),
      governor_(config.overload) {
  if (config_.num_workers == 0) {
    throw std::invalid_argument("SessionManager: num_workers must be > 0");
  }
  if (config_.queue_capacity == 0) {
    throw std::invalid_argument("SessionManager: queue_capacity must be > 0");
  }
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  enqueued_total_ = &metrics_->counter("cmarkov_serve_events_enqueued_total");
  processed_total_ =
      &metrics_->counter("cmarkov_serve_events_processed_total");
  dropped_total_ = &metrics_->counter("cmarkov_serve_events_dropped_total");
  rejected_total_ = &metrics_->counter("cmarkov_serve_events_rejected_total");
  windows_total_ = &metrics_->counter("cmarkov_serve_windows_total");
  kernel_windows_total_ =
      &metrics_->counter("cmarkov_serve_kernel_windows_total");
  alarms_total_ = &metrics_->counter("cmarkov_serve_alarms_total");
  sessions_evicted_total_ =
      &metrics_->counter("cmarkov_serve_sessions_evicted_total");
  sessions_restored_total_ =
      &metrics_->counter("cmarkov_serve_sessions_restored_total");
  evicted_dropped_total_ =
      &metrics_->counter("cmarkov_serve_events_dropped_evicted_total");
  model_reloads_total_ =
      &metrics_->counter("cmarkov_serve_model_reloads_total");
  kernel_builds_total_ =
      &metrics_->counter("cmarkov_serve_kernel_builds_total");
  overload_transitions_total_ =
      &metrics_->counter("cmarkov_serve_overload_transitions_total");
  overload_shed_traces_total_ =
      &metrics_->counter("cmarkov_serve_overload_shed_traces_total");
  overload_shed_hellos_total_ =
      &metrics_->counter("cmarkov_serve_overload_shed_hellos_total");
  overload_early_evicted_total_ =
      &metrics_->counter("cmarkov_serve_overload_early_evicted_total");
  reload_micros_ = &metrics_->histogram("cmarkov_serve_model_reload_micros",
                                        latency_bucket_bounds());
  kernel_build_micros_ = &metrics_->histogram(
      "cmarkov_serve_kernel_build_micros", latency_bucket_bounds());
  latency_micros_ = &metrics_->histogram("cmarkov_serve_latency_micros",
                                         latency_bucket_bounds());
  uptime_gauge_ = &metrics_->gauge("cmarkov_serve_uptime_seconds");
  sessions_gauge_ = &metrics_->gauge("cmarkov_serve_sessions_open");
  state_bytes_gauge_ = &metrics_->gauge("cmarkov_serve_session_state_bytes");
  kernel_image_bytes_gauge_ =
      &metrics_->gauge("cmarkov_serve_kernel_image_bytes");
  overload_level_gauge_ = &metrics_->gauge("cmarkov_serve_overload_level");
  snapshots_.bind_instruments(*metrics_);
  queue_depth_gauges_.reserve(config_.num_workers);
  shard_sessions_gauges_.reserve(config_.num_workers);
  shard_state_bytes_gauges_.reserve(config_.num_workers);
  shard_processed_totals_.reserve(config_.num_workers);
  shard_evicted_totals_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    queue_depth_gauges_.push_back(
        &metrics_->gauge("cmarkov_serve_queue_depth_w" + std::to_string(i)));
    shard_sessions_gauges_.push_back(
        &metrics_->gauge("cmarkov_serve_shard_sessions_w" + std::to_string(i)));
    shard_state_bytes_gauges_.push_back(&metrics_->gauge(
        "cmarkov_serve_shard_state_bytes_w" + std::to_string(i)));
    shard_processed_totals_.push_back(&metrics_->counter(
        "cmarkov_serve_shard_processed_total_w" + std::to_string(i)));
    shard_evicted_totals_.push_back(&metrics_->counter(
        "cmarkov_serve_shard_evicted_total_w" + std::to_string(i)));
  }
  tracer_ = std::make_unique<obs::Tracer>(config_.tracing);
  decision_log_ =
      std::make_unique<obs::DecisionLog>(config_.decision_log_capacity);
  spans_total_ = &metrics_->counter("cmarkov_trace_spans_total");
  spans_dropped_total_ = &metrics_->counter("cmarkov_trace_spans_dropped_total");
  decisions_total_ = &metrics_->counter("cmarkov_trace_decisions_total");
  decisions_dropped_total_ =
      &metrics_->counter("cmarkov_trace_decisions_dropped_total");
  workers_.reserve(config_.num_workers);
  for (std::size_t i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
    workers_.back()->index = i;
  }
  if (!config_.manual_pump) {
    for (auto& worker : workers_) {
      worker->thread = std::thread([this, w = worker.get()] { worker_loop(*w); });
    }
  }
}

SessionManager::~SessionManager() {
  for (auto& worker : workers_) {
    {
      const std::lock_guard lock(worker->mu);
      worker->stop = true;
    }
    worker->cv_nonempty.notify_all();
    worker->cv_space.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void SessionManager::open_session(const std::string& id,
                                  const std::string& model,
                                  std::optional<core::MonitorOptions> options) {
  const std::lock_guard lifecycle(lifecycle_mu_);
  {
    const std::shared_lock lock(sessions_mu_);
    if (sessions_.find(id) != sessions_.end()) {
      throw std::invalid_argument("SessionManager: session '" + id +
                                  "' is already open");
    }
  }
  if (snapshots_.contains(id)) {
    // HELLO for an evicted session: resume it. The snapshot's hysteresis
    // settings win over `options` — they are the session's own history.
    auto snapshot = snapshots_.peek(id);
    if (snapshot->model != model) {
      throw std::invalid_argument(
          "SessionManager: session '" + id + "' has a pending snapshot for "
          "model '" + snapshot->model + "', not '" + model + "'");
    }
    restore_locked(std::move(*snapshots_.take(id)));
    return;
  }
  if (governor_.enabled() && governor_.shed_new_sessions()) {
    // Ladder level 2: genuinely NEW sessions are refused with a retry
    // hint. Restores (handled above) stay admitted — submit() would
    // transparently restore those sessions anyway, so refusing their
    // HELLO here would shed nothing.
    overload_shed_hellos_total_->add(1);
    throw OverloadedError(governor_.retry_after_ms());
  }
  VersionedModel versioned = registry_.require_versioned(model);
  const std::size_t shard = std::hash<std::string>{}(id) % workers_.size();
  auto session = std::make_shared<Session>(
      id, model, std::move(versioned), shard,
      options.value_or(config_.monitor), pool_.acquire());
  session->last_active.store(
      activity_clock_.fetch_add(1, std::memory_order_relaxed),
      std::memory_order_relaxed);
  insert_resident(session);
  enforce_residency_locked(session.get());
}

SubmitResult SessionManager::submit(const std::string& id,
                                    trace::CallEvent event) {
  return submit(id, std::move(event), std::string());
}

SubmitResult SessionManager::submit(const std::string& id,
                                    trace::CallEvent event,
                                    const std::string& trace_id,
                                    std::uint64_t* seq_out) {
  // One sampling decision per event, taken before the queue so the queue
  // span covers the full wait; explicit trace ids always trace. Taken once
  // even if the enqueue below has to retry across an eviction.
  bool traced = false;
  std::uint64_t seq = 0;
  bool sampled = false;

  for (;;) {
    std::shared_ptr<Session> session = find_session(id);
    if (!session) {
      // Not resident: transparently restore from the snapshot store (the
      // session may have been evicted — possibly by a previous daemon run).
      session = try_restore(id);
      if (!session) return SubmitResult::kUnknownSession;
    }

    if (!sampled && tracer_->enabled()) {
      sampled = true;
      const bool forced = !trace_id.empty();
      if (!forced && governor_.shed_trace_sampling()) {
        // Ladder level 1: suspend sampled tracing (the cheapest shed —
        // pure observability, zero scoring impact). Explicit tid= traces
        // are debugging requests and stay honored.
        overload_shed_traces_total_->add(1);
      } else {
        traced = tracer_->sample(forced);
        if (traced) {
          seq = tracer_->next_seq();
          if (seq_out != nullptr) *seq_out = seq;
        }
      }
    }

    Worker& worker = *workers_[session->shard];
    SubmitResult result = SubmitResult::kAccepted;
    bool stale = false;
    bool rejected = false;
    {
      std::unique_lock lock(worker.mu);
      if (session->evicted) {
        stale = true;  // evicted between find and lock: re-resolve
      } else if (worker.queue.size() >= config_.queue_capacity ||
                 CMARKOV_FAILPOINT("serve.admit_full")) {
        switch (config_.policy) {
          case BackpressurePolicy::kBlock:
            if (config_.manual_pump) {
              // No worker thread will ever make room: pump inline instead.
              lock.unlock();
              pump_worker(worker);
              lock.lock();
            } else {
              worker.cv_space.wait(lock, [&] {
                return worker.queue.size() < config_.queue_capacity ||
                       worker.stop || session->evicted;
              });
              if (worker.stop) return SubmitResult::kRejected;
            }
            if (session->evicted) stale = true;
            break;
          case BackpressurePolicy::kDropOldest: {
            if (worker.queue.empty()) break;  // failpoint-forced full check
            Item& victim = worker.queue.front();
            victim.session->dropped.fetch_add(1, std::memory_order_relaxed);
            victim.session->pending.fetch_sub(1, std::memory_order_release);
            dropped_total_->add(1);
            worker.queue.pop_front();
            worker.depth.fetch_sub(1, std::memory_order_relaxed);
            queued_events_.fetch_sub(1, std::memory_order_relaxed);
            result = SubmitResult::kDroppedOldest;
            break;
          }
          case BackpressurePolicy::kReject:
            session->rejected.fetch_add(1, std::memory_order_relaxed);
            rejected_total_->add(1);
            rejected = true;
            break;
        }
      }
      if (!stale && !rejected) {
        session->pending.fetch_add(1, std::memory_order_relaxed);
        worker.queue.push_back(Item{session, std::move(event),
                                    clock_.micros(), trace_id, traced, seq});
        worker.depth.fetch_add(1, std::memory_order_relaxed);
        queued_events_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (stale) continue;
    if (rejected) {
      // A refused submit is still a pressure observation — under a hard
      // overload with the reject policy it may be the only one.
      maybe_update_governor();
      return SubmitResult::kRejected;
    }
    worker.cv_nonempty.notify_one();
    session->last_active.store(
        activity_clock_.fetch_add(1, std::memory_order_relaxed),
        std::memory_order_relaxed);
    session->enqueued.fetch_add(1, std::memory_order_relaxed);
    enqueued_total_->add(1);
    maybe_update_governor();
    return result;
  }
}

bool SessionManager::has_session(const std::string& id) const {
  return find_session(id) != nullptr || snapshots_.contains(id);
}

SessionStats SessionManager::session_stats(const std::string& id) const {
  if (const auto session = find_session(id)) return snapshot(*session);
  if (const auto snap = snapshots_.peek(id)) return stats_from_snapshot(*snap);
  throw std::invalid_argument("SessionManager: no session '" + id + "'");
}

std::vector<SessionStats> SessionManager::all_session_stats() const {
  std::vector<std::shared_ptr<Session>> sessions;
  {
    const std::shared_lock lock(sessions_mu_);
    sessions.reserve(sessions_.size());
    for (const auto& [id, session] : sessions_) sessions.push_back(session);
  }
  std::vector<SessionStats> out;
  out.reserve(sessions.size());
  for (const auto& session : sessions) out.push_back(snapshot(*session));
  return out;
}

SessionStats SessionManager::close_session(const std::string& id) {
  if (find_session(id) != nullptr) {
    drain();
    const std::lock_guard lifecycle(lifecycle_mu_);
    // Re-resolve under the lifecycle lock: the session may have been
    // evicted between the check and here (falls through to the store).
    if (const auto session = find_session(id)) {
      Worker& worker = *workers_[session->shard];
      {
        // Mirror evict_locked: a producer that resolved this session
        // before the erase below must observe the close under worker.mu
        // and re-resolve (submit's stale-retry loop), not enqueue after
        // the pending==0 wait into a monitor whose storage was released.
        const std::lock_guard lock(worker.mu);
        session->evicted = true;
      }
      // Blocked producers re-check the evicted flag in their predicate.
      worker.cv_space.notify_all();
      while (session->pending.load(std::memory_order_acquire) != 0) {
        if (config_.manual_pump) pump_worker(worker);
        std::this_thread::yield();
      }
      SessionStats stats = snapshot(*session);
      {
        const std::unique_lock lock(sessions_mu_);
        sessions_.erase(session->id);
        const std::size_t index = session->list_index;
        if (index + 1 != session_list_.size()) {
          session_list_[index] = std::move(session_list_.back());
          session_list_[index]->list_index = index;
        }
        session_list_.pop_back();
      }
      state_bytes_sum_.fetch_sub(
          session->state_bytes.load(std::memory_order_relaxed),
          std::memory_order_relaxed);
      const std::lock_guard monitor_lock(session->monitor_mu);
      pool_.release(session->monitor.release_storage());
      return stats;
    }
  }
  if (auto snap = snapshots_.take(id)) return stats_from_snapshot(*snap);
  throw std::invalid_argument("SessionManager: no session '" + id + "'");
}

bool SessionManager::evict_session(const std::string& id) {
  const std::lock_guard lifecycle(lifecycle_mu_);
  const auto session = find_session(id);
  if (!session) return false;
  evict_locked(session);
  return true;
}

std::size_t SessionManager::resident_sessions() const {
  const std::shared_lock lock(sessions_mu_);
  return sessions_.size();
}

ReloadReport SessionManager::reload_model(
    const std::string& name, std::shared_ptr<const core::Detector> detector) {
  const double start_micros = clock_.micros();
  if (CMARKOV_FAILPOINT("serve.reload_fail")) {
    // Simulated publish failure, before any registry mutation: the old
    // version keeps serving and every session keeps its binding. Thrown as
    // invalid_argument (a logic_error) so both protocols answer ERR — a
    // failed reload is an operator problem, not a framing violation.
    throw std::invalid_argument(
        "SessionManager: reload of model '" + name +
        "' failed (failpoint serve.reload_fail)");
  }
  registry_.add_shared(name, std::move(detector));
  const VersionedModel versioned = registry_.require_versioned(name);
  // add_shared compiled a fresh kernel image for the new version; account
  // the build the service just paid for.
  kernel_builds_total_->add(1);
  kernel_build_micros_->record(versioned.kernel->build_micros());

  ReloadReport report;
  report.version = versioned.version;
  report.fingerprint = versioned.fingerprint;

  const std::lock_guard lifecycle(lifecycle_mu_);
  std::vector<std::shared_ptr<Session>> affected;
  {
    const std::shared_lock lock(sessions_mu_);
    for (const auto& session : session_list_) {
      if (session->model_name == name) affected.push_back(session);
    }
  }
  for (const auto& session : affected) {
    // monitor_mu serializes against the owning worker: an event scoring
    // right now finishes against the old model; the next one sees the new
    // binding. Nothing queued is dropped.
    const std::lock_guard lock(session->monitor_mu);
    session->detector = versioned.detector;
    session->model_version = versioned.version;
    session->model_fingerprint = versioned.fingerprint;
    session->monitor.rebind(*session->detector, versioned.kernel);
    const std::size_t bytes = session->monitor.state_bytes();
    const std::size_t prev =
        session->state_bytes.exchange(bytes, std::memory_order_relaxed);
    state_bytes_sum_.fetch_add(bytes - prev, std::memory_order_relaxed);
    ++report.sessions_rebound;
  }

  // Epoch-based reclamation: a worker mid-batch advertises the reload
  // epoch it started under; one that is idle resolves any future model
  // through the registry and sees the new version. The minimum across
  // busy workers bounds which retired references can still be observed.
  std::uint64_t min_active = registry_.reload_epoch();
  for (const auto& worker : workers_) {
    const std::uint64_t epoch =
        worker->active_epoch.load(std::memory_order_acquire);
    if (epoch < min_active) min_active = epoch;
  }
  report.retired_reclaimed = registry_.reclaim_retired(min_active);

  report.micros = clock_.micros() - start_micros;
  model_reloads_total_->add(1);
  reload_micros_->record(report.micros);
  log_info() << "reload: model '" << name << "' -> v" << report.version
             << " (" << report.sessions_rebound << " session(s) rebound, "
             << report.retired_reclaimed << " retired model(s) reclaimed)";
  return report;
}

void SessionManager::set_drift_monitor(DriftMonitor* monitor,
                                       std::string model_name) {
  drift_model_name_ = std::move(model_name);
  drift_monitor_.store(monitor, std::memory_order_release);
}

void SessionManager::drain() {
  for (auto& worker : workers_) {
    if (config_.manual_pump) {
      pump_worker(*worker);
      continue;
    }
    std::unique_lock lock(worker->mu);
    worker->cv_idle.wait(lock, [&] {
      return worker->queue.empty() && worker->in_flight == 0;
    });
  }
}

ServiceMetrics SessionManager::metrics() const {
  ServiceMetrics m;
  m.uptime_seconds = clock_.seconds();
  {
    const std::shared_lock lock(sessions_mu_);
    m.sessions_open = sessions_.size();
  }
  m.events_enqueued = enqueued_total_->value();
  m.events_processed = processed_total_->value();
  m.events_dropped = dropped_total_->value();
  m.events_rejected = rejected_total_->value();
  m.windows_scored = windows_total_->value();
  m.alarms = alarms_total_->value();
  if (m.uptime_seconds > 0.0) {
    m.events_per_second =
        static_cast<double>(m.events_processed) / m.uptime_seconds;
  }
  m.queue_depths.reserve(workers_.size());
  for (const auto& worker : workers_) {
    m.queue_depths.push_back(worker->depth.load(std::memory_order_relaxed));
  }
  m.latency_samples = latency_micros_->count();
  m.p50_latency_micros = latency_micros_->quantile(0.50);
  m.p99_latency_micros = latency_micros_->quantile(0.99);
  return m;
}

std::vector<ShardStatus> SessionManager::shard_status() const {
  std::vector<ShardStatus> out(workers_.size());
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    out[i].shard = i;
    out[i].queue_depth = workers_[i]->depth.load(std::memory_order_relaxed);
    out[i].processed = shard_processed_totals_[i]->value();
    out[i].evicted_sessions = shard_evicted_totals_[i]->value();
  }
  const std::shared_lock lock(sessions_mu_);
  for (const auto& session : session_list_) {
    out[session->shard].sessions += 1;
    out[session->shard].state_bytes +=
        session->state_bytes.load(std::memory_order_relaxed);
  }
  return out;
}

void SessionManager::refresh_gauges() {
  uptime_gauge_->set(clock_.seconds());
  std::size_t resident = 0;
  std::vector<std::size_t> shard_sessions(workers_.size(), 0);
  std::vector<std::uint64_t> shard_bytes(workers_.size(), 0);
  {
    const std::shared_lock lock(sessions_mu_);
    resident = sessions_.size();
    for (const auto& session : session_list_) {
      shard_sessions[session->shard] += 1;
      shard_bytes[session->shard] +=
          session->state_bytes.load(std::memory_order_relaxed);
    }
  }
  sessions_gauge_->set(static_cast<double>(resident));
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    shard_sessions_gauges_[i]->set(static_cast<double>(shard_sessions[i]));
    shard_state_bytes_gauges_[i]->set(static_cast<double>(shard_bytes[i]));
  }
  // Average per-resident-session scoring-state footprint — the number the
  // sessions-per-gigabyte budget in docs/SERVING.md is written against.
  const std::uint64_t bytes = state_bytes_sum_.load(std::memory_order_relaxed);
  state_bytes_gauge_->set(
      resident == 0 ? 0.0
                    : static_cast<double>(bytes) /
                          static_cast<double>(resident));
  // Shared per-model-version footprint, reported separately from the
  // per-session bytes above so the 16 KiB/session budget stays honest.
  kernel_image_bytes_gauge_->set(
      static_cast<double>(registry_.kernel_image_bytes()));
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    queue_depth_gauges_[i]->set(static_cast<double>(
        workers_[i]->depth.load(std::memory_order_relaxed)));
  }
  // The METRICS refresh doubles as a governor heartbeat, so a service
  // whose producers stopped submitting (overloaded clients backing off!)
  // still walks the ladder back down.
  update_governor();
  overload_level_gauge_->set(
      static_cast<double>(static_cast<int>(governor_.level())));
  sync_failpoint_hits();
}

void SessionManager::maybe_update_governor() {
  if (!governor_.enabled()) return;
  const std::uint64_t tick =
      governor_ticks_.fetch_add(1, std::memory_order_relaxed);
  const bool elevated = governor_.level() != OverloadLevel::kNormal;
  // Every 64th event in steady state (the update takes a mutex); every
  // event while elevated, so shedding starts and stops promptly.
  if (!elevated && (tick & 63u) != 0) return;
  update_governor();
}

void SessionManager::update_governor() {
  if (!governor_.enabled()) return;
  const OverloadLevel before = governor_.level();
  const OverloadGovernor::Update update = governor_.update(
      clock_.micros(), queued_events_.load(std::memory_order_relaxed),
      config_.num_workers * config_.queue_capacity, service_ema_micros());
  if (update.transitions == 0) return;
  overload_transitions_total_->add(
      static_cast<std::uint64_t>(update.transitions));
  log_info() << "overload: " << overload_level_name(before) << " -> "
             << overload_level_name(update.level) << " (queued="
             << queued_events_.load(std::memory_order_relaxed)
             << ", ema=" << service_ema_micros() << "us)";
  if (update.level == OverloadLevel::kShedIdle &&
      before != OverloadLevel::kShedIdle) {
    // Entering level 3: shrink the resident working set right away rather
    // than waiting for the next open/restore to trigger enforcement.
    const std::lock_guard lifecycle(lifecycle_mu_);
    enforce_residency_locked(nullptr);
  }
}

void SessionManager::note_service_time(double micros_per_event) {
  // Approximate EMA over a lock-free double: racing writers may drop a
  // sample, which only delays the estimate — never corrupts it.
  const std::uint64_t raw = service_ema_bits_.load(std::memory_order_relaxed);
  double ema = 0.0;
  std::memcpy(&ema, &raw, sizeof(ema));
  ema = ema <= 0.0 ? micros_per_event
                   : 0.8 * ema + 0.2 * micros_per_event;
  std::uint64_t out = 0;
  std::memcpy(&out, &ema, sizeof(out));
  service_ema_bits_.store(out, std::memory_order_relaxed);
}

double SessionManager::service_ema_micros() const {
  const std::uint64_t raw = service_ema_bits_.load(std::memory_order_relaxed);
  double ema = 0.0;
  std::memcpy(&ema, &raw, sizeof(ema));
  return ema;
}

void SessionManager::sync_failpoint_hits() {
  // No armed-check shortcut here: hits accrued while a point was armed
  // must still be mirrored by a METRICS refresh that runs after it was
  // disarmed. The registry snapshot is cheap and METRICS is not hot.
  const std::lock_guard lock(failpoint_sync_mu_);
  for (const util::FailpointInfo& info :
       util::FailpointRegistry::instance().snapshot()) {
    std::uint64_t& seen = failpoint_hits_seen_[info.name];
    if (info.hits <= seen) continue;
    std::string metric = "cmarkov_failpoint_";
    for (const char c : info.name) metric.push_back(c == '.' ? '_' : c);
    metric += "_hits_total";
    metrics_->counter(metric).add(info.hits - seen);
    seen = info.hits;
  }
}

const obs::MetricsRegistry& SessionManager::metrics_registry() {
  refresh_gauges();
  return *metrics_;
}

std::string SessionManager::next_session_id() {
  return "s" + std::to_string(
                   next_id_.fetch_add(1, std::memory_order_relaxed) + 1);
}

std::shared_ptr<SessionManager::Session> SessionManager::find_session(
    const std::string& id) const {
  const std::shared_lock lock(sessions_mu_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::shared_ptr<SessionManager::Session> SessionManager::try_restore(
    const std::string& id) {
  const std::lock_guard lifecycle(lifecycle_mu_);
  // Another producer may have restored it while we waited for the lock.
  if (auto session = find_session(id)) return session;
  auto snapshot = snapshots_.take(id);
  if (!snapshot) return nullptr;
  return restore_locked(std::move(*snapshot));
}

std::shared_ptr<SessionManager::Session> SessionManager::restore_locked(
    SessionSnapshot snap) {
  VersionedModel versioned = registry_.require_versioned(snap.model);
  core::MonitorOptions options = config_.monitor;
  options.windows_to_alarm = static_cast<std::size_t>(snap.windows_to_alarm);
  options.cooldown_events = static_cast<std::size_t>(snap.cooldown_events);
  const std::size_t shard = std::hash<std::string>{}(snap.id) % workers_.size();
  auto session = std::make_shared<Session>(snap.id, snap.model,
                                           std::move(versioned), shard,
                                           options, pool_.acquire());
  session->enqueued.store(snap.enqueued, std::memory_order_relaxed);
  session->processed.store(snap.processed, std::memory_order_relaxed);
  session->dropped.store(snap.dropped, std::memory_order_relaxed);
  session->rejected.store(snap.rejected, std::memory_order_relaxed);
  session->evicted_dropped.store(snap.evicted_dropped,
                                 std::memory_order_relaxed);
  core::MonitorSnapshot monitor = std::move(snap.monitor);
  if (session->model_fingerprint != snap.model_fingerprint) {
    // The model changed while the session was frozen: the window ids index
    // a dead alphabet. Keep the cumulative stats and any pending cooldown,
    // start a fresh window (same contract as a live rebind).
    monitor.window.clear();
    monitor.consecutive_flagged = 0;
  }
  session->monitor.restore(monitor);
  session->store_stats_cache(session->monitor.stats());
  session->last_active.store(
      activity_clock_.fetch_add(1, std::memory_order_relaxed),
      std::memory_order_relaxed);
  insert_resident(session);
  sessions_restored_total_->add(1);
  enforce_residency_locked(session.get());
  return session;
}

void SessionManager::insert_resident(std::shared_ptr<Session> session) {
  Session* raw = session.get();
  {
    const std::unique_lock lock(sessions_mu_);
    if (!sessions_.emplace(raw->id, session).second) {
      throw std::invalid_argument("SessionManager: session '" + raw->id +
                                  "' is already open");
    }
    raw->list_index = session_list_.size();
    session_list_.push_back(std::move(session));
  }
  const std::size_t bytes = raw->monitor.state_bytes();
  raw->state_bytes.store(bytes, std::memory_order_relaxed);
  state_bytes_sum_.fetch_add(bytes, std::memory_order_relaxed);
}

void SessionManager::evict_locked(const std::shared_ptr<Session>& session) {
  Worker& worker = *workers_[session->shard];
  std::size_t purged = 0;
  {
    const std::lock_guard lock(worker.mu);
    session->evicted = true;
    auto& queue = worker.queue;
    const auto keep_end =
        std::remove_if(queue.begin(), queue.end(), [&](const Item& item) {
          return item.session.get() == session.get();
        });
    purged = static_cast<std::size_t>(queue.end() - keep_end);
    queue.erase(keep_end, queue.end());
  }
  if (purged > 0) {
    // Lifecycle loss, not backpressure: accounted on its own counter
    // (events_dropped_total would misattribute it to queue pressure).
    session->pending.fetch_sub(purged, std::memory_order_release);
    session->evicted_dropped.fetch_add(purged, std::memory_order_relaxed);
    evicted_dropped_total_->add(purged);
    worker.depth.fetch_sub(purged, std::memory_order_relaxed);
    queued_events_.fetch_sub(purged, std::memory_order_relaxed);
  }
  // Blocked producers of this session must re-resolve it (their wait
  // predicate checks the evicted flag), so wake them even if no queued
  // item was purged.
  worker.cv_space.notify_all();
  // An item popped into a worker batch is not in the queue but still
  // pending; let the score finish so the snapshot sees its effect.
  while (session->pending.load(std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  {
    const std::unique_lock lock(sessions_mu_);
    sessions_.erase(session->id);
    const std::size_t index = session->list_index;
    if (index + 1 != session_list_.size()) {
      session_list_[index] = std::move(session_list_.back());
      session_list_[index]->list_index = index;
    }
    session_list_.pop_back();
  }
  state_bytes_sum_.fetch_sub(
      session->state_bytes.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  SessionSnapshot snap;
  {
    const std::lock_guard lock(session->monitor_mu);
    snap = freeze(*session);
    pool_.release(session->monitor.release_storage());
  }
  snapshots_.put(std::move(snap));
  sessions_evicted_total_->add(1);
  shard_evicted_totals_[session->shard]->add(1);
}

void SessionManager::enforce_residency_locked(const Session* keep) {
  if (config_.max_resident_sessions == 0) return;
  // Ladder level 3: enforce against a reduced budget, evicting idle
  // sessions EARLY to shrink the working set (they lose nothing — snapshot
  // + transparent restore — they just pay a restore once pressure clears).
  std::size_t limit = config_.max_resident_sessions;
  if (governor_.enabled() && governor_.shed_idle_sessions()) {
    const auto shed = static_cast<std::size_t>(
        static_cast<double>(limit) *
        governor_.options().shed_resident_fraction);
    limit = std::max<std::size_t>(1, shed);
  }
  // Bounded rounds: when every sampled candidate is busy (pending > 0) we
  // tolerate a temporary overshoot rather than spinning — the next open or
  // restore tries again.
  for (std::size_t round = 0; round < 4 * kEvictionProbes; ++round) {
    std::shared_ptr<Session> victim;
    bool early = false;
    {
      const std::shared_lock lock(sessions_mu_);
      if (session_list_.size() <= limit) return;
      // Only evictions the normal budget would NOT have forced count as
      // ladder-induced.
      early = session_list_.size() <= config_.max_resident_sessions;
      std::uint64_t best_tick = std::numeric_limits<std::uint64_t>::max();
      const auto consider = [&](const std::shared_ptr<Session>& candidate) {
        if (candidate.get() == keep) return;
        if (candidate->pending.load(std::memory_order_acquire) != 0) return;
        const std::uint64_t tick =
            candidate->last_active.load(std::memory_order_relaxed);
        if (tick < best_tick) {
          best_tick = tick;
          victim = candidate;
        }
      };
      if (session_list_.size() <= kEvictionProbes) {
        for (const auto& candidate : session_list_) consider(candidate);
      } else {
        for (std::size_t probe = 0; probe < kEvictionProbes; ++probe) {
          // xorshift-free LCG; only the high bits are used.
          evict_rng_state_ =
              evict_rng_state_ * 6364136223846793005ull +
              1442695040888963407ull;
          const std::size_t index = static_cast<std::size_t>(
              (evict_rng_state_ >> 33) % session_list_.size());
          consider(session_list_[index]);
        }
      }
    }
    if (!victim) return;  // all sampled candidates busy
    evict_locked(victim);
    if (early) overload_early_evicted_total_->add(1);
  }
}

SessionStats SessionManager::stats_from_snapshot(
    const SessionSnapshot& snap) const {
  SessionStats stats;
  stats.id = snap.id;
  stats.model = snap.model;
  stats.enqueued = snap.enqueued;
  stats.processed = snap.processed;
  stats.dropped = snap.dropped;
  stats.rejected = snap.rejected;
  stats.evicted_dropped = snap.evicted_dropped;
  stats.monitor = snap.monitor.stats;
  return stats;
}

void SessionManager::process_item(Item& item, BatchCounters& batch) {
  // The dequeue timestamp only feeds the queue/score span pair, so only
  // traced events pay the clock read (latency spans enqueue -> done).
  const double dequeue_micros = item.traced ? clock_.micros() : 0.0;
  core::MonitorUpdate update;
  obs::DecisionRecord decision;
  bool has_decision = false;
  {
    const std::lock_guard lock(item.session->monitor_mu);
    update = item.session->monitor.on_event(std::move(item.event));
    if (update.window_complete && update.window != nullptr) {
      // Must stay under monitor_mu: update.window points into the
      // monitor's scoring scratch, which a concurrent reload_model ->
      // rebind clears under this same mutex.
      DriftMonitor* drift = drift_monitor_.load(std::memory_order_acquire);
      if (drift != nullptr &&
          item.session->model_name == drift_model_name_) {
        drift->observe(update.log_likelihood, update.flagged,
                       update.unknown_symbol, *update.window);
      }
    }
    if (update.decision != nullptr) {
      // Stamp ids into the monitor's ring copy (served by TRACE) and take
      // a copy for the service-wide JSONL log while still under the lock.
      // Once the flight-recorder log is full the copy would only be
      // dropped, so skip it and count the drop instead.
      obs::DecisionRecord* record = item.session->monitor.last_decision();
      record->session = item.session->id;
      record->trace_id = item.trace_id;
      if (decision_log_->full()) {
        decision_log_->drop();
        decisions_dropped_total_->add(1);
      } else {
        decision = *record;
        has_decision = true;
      }
    }
    item.session->store_stats_cache(item.session->monitor.stats());
  }
  if (has_decision) {
    if (decision_log_->append(std::move(decision))) {
      decisions_total_->add(1);
    } else {
      decisions_dropped_total_->add(1);
    }
  }
  item.session->processed.fetch_add(1, std::memory_order_relaxed);
  batch.processed += 1;
  if (update.window_complete) {
    batch.windows += 1;
    if (update.scored_by_kernel) batch.kernel_windows += 1;
  }
  if (update.alarm) {
    alarms_total_->add(1);
    log_debug() << "alarm session=" << item.session->id
                << " model=" << item.session->model_name
                << (update.unknown_symbol ? " cause=unknown-context"
                                          : " cause=low-likelihood");
  }
  const double done_micros = clock_.micros();
  latency_micros_->record(done_micros - item.enqueue_micros);
  if (item.traced) {
    if (tracer_->full()) {
      // Flight recorder exhausted: skip span construction, keep the drop
      // accounting exact (one queue + one score span per traced event).
      tracer_->drop(2);
      spans_dropped_total_->add(2);
      item.session->pending.fetch_sub(1, std::memory_order_release);
      item.session.reset();
      return;
    }
    const auto make_span = [&](const char* name, double start, double end) {
      obs::SpanRecord span;
      span.name = name;
      span.session = item.session->id;
      span.trace_id = item.trace_id;
      span.seq = item.seq;
      span.start_micros = start;
      span.duration_micros = end - start;
      span.thread = item.session->shard;
      return span;
    };
    record_span(make_span("queue", item.enqueue_micros, dequeue_micros));
    record_span(make_span("score", dequeue_micros, done_micros));
  }
  item.session->pending.fetch_sub(1, std::memory_order_release);
  item.session.reset();
}

void SessionManager::flush_batch(std::size_t shard,
                                 const BatchCounters& batch) {
  if (batch.processed > 0) {
    processed_total_->add(batch.processed);
    shard_processed_totals_[shard]->add(batch.processed);
  }
  if (batch.windows > 0) windows_total_->add(batch.windows);
  if (batch.kernel_windows > 0) {
    kernel_windows_total_->add(batch.kernel_windows);
  }
}

void SessionManager::record_span(obs::SpanRecord span) {
  if (tracer_->record(std::move(span))) {
    spans_total_->add(1);
  } else {
    spans_dropped_total_->add(1);
  }
}

std::vector<obs::DecisionRecord> SessionManager::recent_decisions(
    const std::string& id, std::size_t n) const {
  const auto session = find_session(id);
  if (!session) {
    if (snapshots_.contains(id)) return {};  // ring not snapshotted
    throw std::invalid_argument("SessionManager: no session '" + id + "'");
  }
  std::vector<obs::DecisionRecord> out;
  const std::lock_guard lock(session->monitor_mu);
  const auto& ring = session->monitor.recent_decisions();
  const std::size_t count = std::min(n, ring.size());
  out.reserve(count);
  for (std::size_t i = ring.size() - count; i < ring.size(); ++i) {
    out.push_back(ring[i]);
    out.back().session = session->id;
  }
  return out;
}

void SessionManager::pump_worker(Worker& worker) {
  BatchCounters counters;
  std::size_t pumped = 0;
  const double start_micros = clock_.micros();
  for (;;) {
    Item item;
    {
      const std::lock_guard lock(worker.mu);
      if (worker.queue.empty()) {
        flush_batch(worker.index, counters);
        if (pumped > 0) {
          note_service_time((clock_.micros() - start_micros) /
                            static_cast<double>(pumped));
        }
        return;
      }
      item = std::move(worker.queue.front());
      worker.queue.pop_front();
      worker.depth.fetch_sub(1, std::memory_order_relaxed);
      queued_events_.fetch_sub(1, std::memory_order_relaxed);
    }
    process_item(item, counters);
    ++pumped;
  }
}

void SessionManager::worker_loop(Worker& worker) {
  std::vector<Item> batch;
  batch.reserve(kBatchSize);
  for (;;) {
    {
      std::unique_lock lock(worker.mu);
      worker.cv_nonempty.wait(
          lock, [&] { return worker.stop || !worker.queue.empty(); });
      if (worker.queue.empty()) return;  // stop requested, queue drained
      while (!worker.queue.empty() && batch.size() < kBatchSize) {
        batch.push_back(std::move(worker.queue.front()));
        worker.queue.pop_front();
      }
      worker.in_flight = batch.size();
    }
    worker.depth.fetch_sub(batch.size(), std::memory_order_relaxed);
    queued_events_.fetch_sub(batch.size(), std::memory_order_relaxed);
    worker.cv_space.notify_all();
    worker.active_epoch.store(registry_.reload_epoch(),
                              std::memory_order_release);
    BatchCounters counters;
    const double batch_start_micros = clock_.micros();
    for (Item& item : batch) process_item(item, counters);
    note_service_time((clock_.micros() - batch_start_micros) /
                      static_cast<double>(batch.size()));
    // Flushed before in_flight drops to zero, so drain() implies the
    // service-wide counters already cover everything processed.
    flush_batch(worker.index, counters);
    worker.active_epoch.store(kEpochIdle, std::memory_order_release);
    batch.clear();
    {
      const std::lock_guard lock(worker.mu);
      worker.in_flight = 0;
      if (worker.queue.empty()) worker.cv_idle.notify_all();
    }
  }
}

SessionStats SessionManager::snapshot(const Session& session) const {
  SessionStats stats;
  stats.id = session.id;
  stats.model = session.model_name;
  stats.enqueued = session.enqueued.load(std::memory_order_relaxed);
  stats.processed = session.processed.load(std::memory_order_relaxed);
  stats.dropped = session.dropped.load(std::memory_order_relaxed);
  stats.rejected = session.rejected.load(std::memory_order_relaxed);
  stats.evicted_dropped =
      session.evicted_dropped.load(std::memory_order_relaxed);
  {
    // Never wait on the owning worker: mid-batch the lock is held for the
    // whole scoring step, and a blocking stats read here is exactly how a
    // scrape used to stall admission. The cache is refreshed per event, so
    // the fallback is at most one event behind.
    const std::unique_lock lock(session.monitor_mu, std::try_to_lock);
    stats.monitor = lock.owns_lock() ? session.monitor.stats()
                                     : session.load_stats_cache();
  }
  return stats;
}

SessionSnapshot SessionManager::freeze(Session& session) const {
  // Caller holds monitor_mu and has proven pending == 0.
  SessionSnapshot snap;
  snap.id = session.id;
  snap.model = session.model_name;
  snap.model_version = session.model_version;
  snap.model_fingerprint = session.model_fingerprint;
  snap.enqueued = session.enqueued.load(std::memory_order_relaxed);
  snap.processed = session.processed.load(std::memory_order_relaxed);
  snap.dropped = session.dropped.load(std::memory_order_relaxed);
  snap.rejected = session.rejected.load(std::memory_order_relaxed);
  snap.evicted_dropped =
      session.evicted_dropped.load(std::memory_order_relaxed);
  snap.windows_to_alarm = session.options.windows_to_alarm;
  snap.cooldown_events = session.options.cooldown_events;
  snap.monitor = session.monitor.snapshot();
  return snap;
}

}  // namespace cmarkov::serve
