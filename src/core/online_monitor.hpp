// Online monitoring: streaming anomaly detection over a live call-event
// feed (the auditd-style production deployment the paper sketches for its
// implementation section). Each incoming event slides a window of the
// detector's segment length; complete windows are scored against the
// trained HMM and alarms are raised with simple hysteresis (consecutive
// flagged windows + cooldown) to keep alert volume manageable.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "src/core/detector.hpp"
#include "src/core/scoring_kernel.hpp"
#include "src/trace/symbolizer.hpp"

namespace cmarkov::obs {
class Counter;
class MetricsRegistry;
}  // namespace cmarkov::obs

namespace cmarkov::core {

// Hysteresis/cooldown semantics (asserted by online_monitor_test):
//   - A streak of consecutive flagged windows is kept; any clean window
//     resets it, and raising an alarm resets it.
//   - An alarm fires on a flagged window when the streak reaches
//     `windows_to_alarm` AND no cooldown is pending.
//   - `cooldown_events` counts *events fed* (on- or off-stream), not scored
//     windows. While the cooldown is pending no alarm can fire, but flagged
//     windows still extend the streak — so if the anomaly persists, the
//     first flagged window at or after cooldown expiry re-alarms
//     immediately; a fresh `windows_to_alarm` streak is NOT required.
//   - Net effect for a persistent anomaly: the first alarm needs
//     `windows_to_alarm` flagged windows, then one alarm every
//     `cooldown_events` events (or every `windows_to_alarm` windows when
//     the cooldown is 0).
/// Decision-audit sampling (docs/OBSERVABILITY.md). When enabled, scored
/// windows selected by the guard get a full `cmarkov.decision.v1`
/// DecisionRecord (per-symbol forward contributions, argmax states,
/// unknown-call marks, threshold margin) kept in a bounded ring:
///   - every `sample_every`-th scored window is recorded (0 disables the
///     periodic sample);
///   - flagged windows and alarms are always recorded when
///     `always_on_flagged` is set, regardless of the period.
/// Detailed scoring reuses the forward pass the verdict already needs, so
/// the steady-state overhead is the sampling branch plus record assembly
/// for admitted windows only.
struct DecisionTraceOptions {
  bool enabled = false;
  /// Record every Nth scored window (1 = all, 0 = only flagged/alarms).
  std::size_t sample_every = 0;
  /// Always record flagged windows and alarms (the audit-trail guarantee:
  /// no anomaly verdict without its explanation).
  bool always_on_flagged = true;
  /// Records retained per monitor; older records are evicted.
  std::size_t ring_capacity = 32;
};

struct MonitorStats {
  std::size_t events_seen = 0;
  std::size_t events_observed = 0;  ///< events matching the model's stream
  std::size_t windows_scored = 0;
  std::size_t windows_flagged = 0;
  std::size_t alarms = 0;
};

/// Recyclable heap buffers backing a monitor's sliding window and scoring
/// scratch — the dominant per-session allocation of the serving tier. The
/// session manager pools these across session open/evict cycles so a
/// million-session churn does not hammer the allocator; a default-built
/// value is an ordinary cold start.
struct MonitorStorage {
  std::vector<std::size_t> window;
  hmm::ObservationSeq segment;
  /// Flat forward scratch for the kernel path (two alpha rows).
  std::vector<double> scratch;
};

/// Complete scoring state of a monitor, linearized. All fields are exact
/// integers, so a snapshot -> restore round trip is bit-identical: a
/// restored monitor produces the same verdicts, scores, and decision
/// records as one that was never interrupted (asserted by
/// online_monitor_test and serve_net_test). The decision-audit ring is
/// deliberately NOT part of the snapshot — it is a flight recorder, not
/// scoring state.
struct MonitorSnapshot {
  /// Encoded window observation ids, oldest first (alphabet indices of the
  /// model the monitor was bound to; meaningless under a different model).
  std::vector<std::size_t> window;
  std::size_t consecutive_flagged = 0;
  std::size_t cooldown_remaining = 0;
  MonitorStats stats;
};

struct MonitorOptions {
  /// Consecutive flagged windows required before an alarm fires.
  std::size_t windows_to_alarm = 1;
  /// Events suppressed after an alarm before the next one may fire.
  std::size_t cooldown_events = 0;
  /// Optional sink for the cmarkov_monitor_* counters (events, windows,
  /// flagged windows, alarms). Non-owning; must outlive the monitor. The
  /// cmarkovd session manager leaves this null and counts service-wide
  /// instead, to avoid double counting across per-session monitors.
  obs::MetricsRegistry* metrics = nullptr;
  /// Per-window decision audit records (off by default).
  DecisionTraceOptions decisions;
};

/// Per-event monitoring outcome.
struct MonitorUpdate {
  /// False while the window is still filling.
  bool window_complete = false;
  double log_likelihood = 0.0;
  /// Window scored below the detector threshold (or contains an unknown
  /// observation).
  bool flagged = false;
  /// Window contained a call the model has never seen in that context.
  bool unknown_symbol = false;
  /// Alarm fired on this event (hysteresis + cooldown applied).
  bool alarm = false;
  /// Window scored through the compiled ScoringKernel (the fast path).
  /// False for windows scored via the reference forward pass — the
  /// decision-audit path, which needs the full alpha matrix. Both paths
  /// produce bit-identical verdicts in exact-kernel mode.
  bool scored_by_kernel = false;
  /// Audit record for this window when decision tracing admitted it; null
  /// otherwise. Points into the monitor's ring — valid until the next
  /// on_event / reset_window call on the same monitor.
  const obs::DecisionRecord* decision = nullptr;
  /// The completed window's encoded observation ids (oldest first); null
  /// while the window is still filling. Points into the monitor's scoring
  /// scratch — valid until the next on_event / rebind on the same
  /// monitor. The serve tier's DriftMonitor copies clean windows from
  /// here into its absorb buffer for incremental retraining.
  const hmm::ObservationSeq* window = nullptr;
};

class OnlineMonitor {
 public:
  /// `detector` must be trained and must outlive the monitor (or be
  /// replaced via rebind before it dies). `symbolizer` may be null when
  /// events arrive pre-symbolized; otherwise raw site addresses are
  /// resolved on the fly (cached-addr2line deployment). `storage` donates
  /// recycled buffers (see MonitorStorage); the window ring is sized to
  /// the detector's segment length either way. `kernel` is the compiled
  /// scoring image to share (the serve tier passes the ModelRegistry's
  /// per-version kernel so a million monitors hold one image); when null,
  /// the monitor compiles its own — correct but wasteful at scale.
  OnlineMonitor(const Detector& detector,
                const trace::Symbolizer* symbolizer = nullptr,
                MonitorOptions options = {}, MonitorStorage storage = {},
                std::shared_ptr<const ScoringKernel> kernel = nullptr);

  /// Feeds one event; returns what happened. Events outside the model's
  /// call stream (e.g. libcalls on a syscall model) are counted but
  /// otherwise ignored.
  MonitorUpdate on_event(trace::CallEvent event);

  /// Feeds a whole trace; returns the number of alarms raised.
  std::size_t on_trace(const trace::Trace& trace);

  const MonitorStats& stats() const { return stats_; }

  /// Retained decision records, oldest first (empty unless decision
  /// tracing is enabled). Bounded by DecisionTraceOptions::ring_capacity.
  const std::deque<obs::DecisionRecord>& recent_decisions() const {
    return decisions_;
  }

  /// Newest retained decision record, mutable (null when none). The
  /// serving tier stamps session / trace ids into it right after the
  /// on_event call that produced it.
  obs::DecisionRecord* last_decision() {
    return decisions_.empty() ? nullptr : &decisions_.back();
  }

  /// Clears the window and hysteresis state (e.g. on process restart), but
  /// keeps cumulative stats.
  void reset_window();

  /// Linearized copy of the complete scoring state (window contents,
  /// hysteresis, cumulative stats). restore() on a monitor bound to the
  /// same model resumes bit-identically, as if never interrupted.
  MonitorSnapshot snapshot() const;

  /// Reinstates a snapshot taken from a monitor bound to the same model.
  /// Throws std::invalid_argument when the snapshot's window exceeds this
  /// detector's segment length (a different-model snapshot).
  void restore(const MonitorSnapshot& snapshot);

  /// Swaps the detector under a live monitor (hot model reload). The
  /// window and flagged-streak reset — window ids encode the OLD model's
  /// alphabet and cannot be rescored — while cumulative stats and any
  /// pending alarm cooldown carry over. The new detector must be trained;
  /// the window ring is resized to its segment length. `kernel` must be
  /// compiled from `detector` (the serve tier passes the new registry
  /// version's shared image); when null a private kernel is compiled.
  void rebind(const Detector& detector,
              std::shared_ptr<const ScoringKernel> kernel = nullptr);

  /// The compiled scoring image this monitor scores through (shared,
  /// read-only; never null after construction).
  const std::shared_ptr<const ScoringKernel>& kernel() const {
    return kernel_;
  }

  /// Heap bytes held by this monitor's scoring state (the per-session
  /// memory bill the serving tier budgets): the object itself plus window
  /// ring, segment scratch, and the kernel's flat forward scratch.
  /// Excludes the decision-audit ring (a debug facility that is empty in
  /// production configurations) and the shared kernel image, which is
  /// per-model-version, not per-session (ScoringKernel::image_bytes).
  std::size_t state_bytes() const;

  /// Moves the window/scratch buffers out for pool recycling. The monitor
  /// must not be fed afterwards; destroy it.
  MonitorStorage release_storage();

 private:
  const Detector* detector_;
  const trace::Symbolizer* symbolizer_;
  MonitorOptions options_;
  /// Shared compiled model image; scores every non-audited window.
  std::shared_ptr<const ScoringKernel> kernel_;
  KernelScratch scratch_;            // flat forward rows, pool-recycled
  std::vector<std::size_t> window_;  // ring of encoded observation ids
  std::size_t window_head_ = 0;      // index of the oldest id
  std::size_t window_count_ = 0;
  hmm::ObservationSeq segment_;      // scoring scratch, reused per window
  std::deque<obs::DecisionRecord> decisions_;  // bounded audit ring
  std::size_t consecutive_flagged_ = 0;
  std::size_t cooldown_remaining_ = 0;
  MonitorStats stats_;
  // Resolved once in the constructor; null when options_.metrics is null.
  obs::Counter* events_counter_ = nullptr;
  obs::Counter* windows_counter_ = nullptr;
  obs::Counter* flagged_counter_ = nullptr;
  obs::Counter* alarms_counter_ = nullptr;
};

}  // namespace cmarkov::core
