// Ablation bench for the design choices DESIGN.md calls out:
//  1. loop treatment: acyclic cut (paper) vs iterative fixpoint (extension)
//  2. clustering: off vs paper K=N/3, with and without PCA, K=N/2
//  3. static initialization vs random initialization
//  4. context granularity: none vs caller (paper) vs call site — testing
//     the paper's claim that finer-than-caller context adds no detection
//     capability for code reuse
//  5. HMM vs the STIDE-style n-gram baseline
#include <iostream>

#include "src/attack/abnormal_s.hpp"
#include "src/eval/comparison.hpp"
#include "src/eval/ngram_baseline.hpp"
#include "src/trace/segmenter.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

namespace {

struct Variant {
  std::string label;
  eval::ComparisonOptions options;
  eval::ModelKind kind = eval::ModelKind::kCMarkov;
};

void run_block(const std::string& title,
               const std::vector<std::string>& programs,
               analysis::CallFilter filter,
               const std::vector<Variant>& variants) {
  std::cout << "--- " << title << " ---\n";
  TablePrinter table(
      {"Program", "Variant", "N states", "FN@FP=0.01", "FN@FP=0.05", "AUC"});
  for (const auto& program : programs) {
    const workload::ProgramSuite suite = workload::make_suite(program);
    for (const auto& variant : variants) {
      auto options = variant.options;
      options.kinds = {variant.kind};
      const auto comparison =
          eval::compare_models(suite, filter, options);
      const auto& model = comparison.model(variant.kind);
      table.add_row({program, variant.label,
                     std::to_string(model.num_states),
                     format_double(eval::fn_at_fp(model.scores, 0.01), 4),
                     format_double(eval::fn_at_fp(model.scores, 0.05), 4),
                     format_double(eval::detection_auc(model.scores), 4)});
    }
  }
  table.print();
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const bool full = eval::full_mode_enabled(argc, argv);
  const eval::ComparisonOptions base =
      eval::default_comparison_options(full);
  std::cout << "=== Ablation: CMarkov design choices ("
            << (full ? "full" : "quick") << " mode) ===\n\n";

  // 1. Loop treatment.
  {
    Variant cut{"acyclic cut (paper)", base};
    Variant fixpoint{"iterative fixpoint", base};
    fixpoint.options.build.matrix.mode =
        analysis::PropagationMode::kIterativeFixpoint;
    run_block("Loop treatment (libcall models)", {"gzip", "vim"},
              analysis::CallFilter::kLibcalls, {cut, fixpoint});
  }

  // 2. Branch heuristic (Definition 2): the paper's uniform split vs a
  // Ball-Larus-style loop bias.
  {
    Variant uniform{"uniform branches (paper)", base};
    Variant biased{"loop-biased branches (p=0.8)", base};
    biased.options.build.matrix.heuristic =
        analysis::BranchHeuristicKind::kLoopBiased;
    run_block("Branch heuristic (syscall models)", {"sed", "proftpd"},
              analysis::CallFilter::kSyscalls, {uniform, biased});
  }

  // 3. Clustering settings.
  {
    Variant off{"clustering off", base};
    off.options.build.clustering.min_calls_for_reduction =
        static_cast<std::size_t>(-1);
    Variant paper{"K = N/3 + PCA (paper)", base};
    paper.options.build.clustering.min_calls_for_reduction = 0;
    Variant no_pca{"K = N/3, no PCA", base};
    no_pca.options.build.clustering.min_calls_for_reduction = 0;
    no_pca.options.build.clustering.use_pca = false;
    Variant half{"K = N/2 + PCA", base};
    half.options.build.clustering.min_calls_for_reduction = 0;
    half.options.build.clustering.target_fraction = 0.5;
    run_block("State reduction (libcall models)", {"bash", "proftpd"},
              analysis::CallFilter::kLibcalls, {off, paper, no_pca, half});
  }

  // 4. Static vs random initialization at the same context sensitivity.
  {
    Variant static_init{"static init (CMarkov)", base,
                        eval::ModelKind::kCMarkov};
    Variant random_init{"random init (Regular-context)", base,
                        eval::ModelKind::kRegularContext};
    run_block("Initialization (syscall models)", {"grep", "nginx"},
              analysis::CallFilter::kSyscalls, {static_init, random_init});
  }

  // 5. Context granularity: none / caller / call site (all random init so
  // only the observation encoding varies).
  {
    Variant none{"no context (Regular-basic)", base,
                 eval::ModelKind::kRegularBasic};
    Variant caller{"caller context (Regular-context)", base,
                   eval::ModelKind::kRegularContext};
    Variant site{"site context (Regular-site)", base,
                 eval::ModelKind::kRegularSite};
    Variant deep{"2-level context (Regular-deep)", base,
                 eval::ModelKind::kRegularDeep};
    run_block("Context granularity (libcall models)", {"vim", "proftpd"},
              analysis::CallFilter::kLibcalls, {none, caller, site, deep});
    std::cout << "Paper claim: context finer than the immediate caller\n"
                 "(call sites, 2-level stacks) does not beat caller-level\n"
                 "context for code-reuse detection, while inflating the\n"
                 "model (the state-explosion concern of Section II-D).\n\n";
  }

  // 6. n-gram baseline vs the probabilistic models (context-free
  // observations for both, so only the modeling differs).
  {
    std::cout << "--- n-gram baseline vs HMM (syscall models) ---\n";
    TablePrinter table({"Program", "Detector", "FN@FP=0.01", "FN@FP=0.05",
                        "AUC"});
    for (const std::string program : {"gzip", "proftpd"}) {
      const workload::ProgramSuite suite = workload::make_suite(program);
      auto options = base;
      options.kinds = {eval::ModelKind::kRegularBasic};
      const auto comparison = eval::compare_models(
          suite, analysis::CallFilter::kSyscalls, options);
      const auto& hmm_model =
          comparison.model(eval::ModelKind::kRegularBasic);
      table.add_row({program, "Regular-basic HMM",
                     format_double(eval::fn_at_fp(hmm_model.scores, 0.01), 4),
                     format_double(eval::fn_at_fp(hmm_model.scores, 0.05), 4),
                     format_double(eval::detection_auc(hmm_model.scores), 4)});

      // n-gram detector over the same data (context-free encoding).
      const auto collection = workload::collect_traces(
          suite, options.test_cases, options.seed);
      hmm::Alphabet alphabet;
      std::vector<hmm::ObservationSeq> encoded;
      for (const auto& trace : collection.traces) {
        encoded.push_back(trace::encode_trace(
            trace, analysis::CallFilter::kSyscalls,
            hmm::ObservationEncoding::kContextFree, alphabet));
      }
      // 80/20 trace-level split: train grams on the first part, score the
      // rest (n-grams have no probabilistic holdout notion).
      const std::size_t train_count = encoded.size() * 4 / 5;
      eval::NgramDetector ngram(6);
      ngram.train({encoded.begin(),
                   encoded.begin() + static_cast<std::ptrdiff_t>(train_count)});

      eval::ScoreSet scores;
      trace::SegmentOptions seg;
      seg.keep_short_tail = false;
      for (std::size_t i = train_count; i < encoded.size(); ++i) {
        for (const auto& segment : trace::segment_sequence(encoded[i], seg)) {
          scores.normal.push_back(ngram.score(segment));
        }
      }
      Rng rng(options.seed ^ 0x5eed);
      const auto legit = attack::legitimate_call_set(
          collection.traces, analysis::CallFilter::kSyscalls);
      const auto normal_segments = attack::event_segments(
          collection.traces, analysis::CallFilter::kSyscalls, 15);
      for (const auto& segment : attack::generate_abnormal_s(
               normal_segments, legit, options.abnormal_count, rng)) {
        trace::Trace wrapper;
        wrapper.events = segment;
        scores.abnormal.push_back(ngram.score(trace::encode_trace_frozen(
            wrapper, analysis::CallFilter::kSyscalls,
            hmm::ObservationEncoding::kContextFree, alphabet,
            alphabet.size())));
      }
      table.add_row({program, "n-gram (n=6)",
                     format_double(eval::fn_at_fp(scores, 0.01), 4),
                     format_double(eval::fn_at_fp(scores, 0.05), 4),
                     format_double(eval::detection_auc(scores), 4)});
    }
    table.print();
    std::cout << "\n";
  }

  std::cout << "Shape check: the paper's choices (acyclic cut, K=N/3 with\n"
               "PCA, static init, caller-level context) should match or\n"
               "beat the alternatives; clustering trades a little accuracy\n"
               "for training speed, static init provides the largest single\n"
               "gain, and site-level context adds nothing over caller-level."
               "\n";
  return 0;
}
