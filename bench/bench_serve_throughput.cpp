// Load generator for the cmarkovd serving layer: K concurrent sessions
// (one producer thread each) replay workload::program_suite traces through
// a SessionManager worker pool and the bench reports aggregate events/sec,
// per-session drop/alarm counters and enqueue-to-verdict latency quantiles.
//
//   bench_serve_throughput [--sessions K] [--events-per-session N]
//                          [--workers W] [--queue C]
//                          [--policy block|drop-oldest|reject]
//                          [--trace off|sample|sample-periodic|always]
//                          [--failpoints disabled|armed]
//                          [--admin off|on] [--admin-scrape-ms MS]
//                          [--full]
//
// Acceptance target (ISSUE 1): >= 100k events/sec aggregate across >= 8
// concurrent sessions under the block policy (nothing dropped).
//
// --trace measures the event-tracing overhead (ISSUE 5, BENCH_obs.json):
// `off` leaves the tracer and decision audit disabled, `sample` records
// 1-in-100 windows/spans, `always` records every window and span. The
// always-on configuration must stay within 3% of `off`.
//
// --failpoints measures the chaos harness overhead (ISSUE 8,
// BENCH_serve.json): `disabled` is the production steady state (every
// CMARKOV_FAILPOINT site pays one relaxed load of the process-wide armed
// counter), `armed` arms snapshot.write_torn with a trigger ordinal this
// workload never reaches, so every site — including serve.admit_full on
// each submit — takes the registry-backed policy evaluation without any
// fault actually firing. Interleave disabled/armed runs on the same host
// to bound both costs; the disabled case must stay within 1% of the
// pre-failpoint binary.
//
// --admin on measures the introspection-plane overhead (PR 10,
// BENCH_obs.json): the full production admin stack runs alongside the
// workload — an EpollServer hosting the HTTP admin plane on an ephemeral
// port, a TimeSeriesCollector sampling every instrument once a second,
// and one poller thread scraping /varz + /metrics + /statusz every
// --admin-scrape-ms (default 1000 ms, the production shape: Prometheus
// scrapes at 1 s or slower and `cmarkov top` defaults to 2 s; 100 ms is
// the stress cadence). Interleave on/off runs on the same host; `on` must
// stay within 3% of `off`.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/timeseries.hpp"
#include "src/serve/net/admin.hpp"
#include "src/serve/net/epoll_server.hpp"
#include "src/serve/session_manager.hpp"
#include "src/util/failpoint.hpp"
#include "src/util/stopwatch.hpp"
#include "src/util/strings.hpp"
#include "src/util/table_printer.hpp"
#include "src/workload/testcase_generator.hpp"

using namespace cmarkov;

namespace {

constexpr double kTargetEventsPerSecond = 100e3;

core::Detector train_detector(const workload::ProgramSuite& suite,
                              std::uint64_t seed) {
  core::DetectorConfig config;
  config.pipeline.filter = analysis::CallFilter::kSyscalls;
  config.training.max_iterations = 6;
  core::Detector detector = core::Detector::build(suite.module(), config);
  detector.train(workload::collect_traces(suite, 30, seed).traces);
  return detector;
}

/// Cycles a suite's benign trace events into a feed of exactly `count`.
std::vector<trace::CallEvent> build_feed(const workload::ProgramSuite& suite,
                                         std::size_t count,
                                         std::uint64_t seed) {
  std::vector<trace::CallEvent> pool;
  for (const auto& trace : workload::collect_traces(suite, 5, seed).traces) {
    pool.insert(pool.end(), trace.events.begin(), trace.events.end());
  }
  std::vector<trace::CallEvent> feed;
  feed.reserve(count);
  while (feed.size() < count) {
    feed.insert(feed.end(), pool.begin(),
                pool.begin() + static_cast<std::ptrdiff_t>(std::min(
                                   pool.size(), count - feed.size())));
  }
  return feed;
}

std::string arg_value(int argc, char** argv, const std::string& flag,
                      const std::string& fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) return argv[i + 1];
  }
  return fallback;
}

bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i] == flag) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool full =
      has_flag(argc, argv, "--full") || std::getenv("CMARKOV_FULL") != nullptr;
  const auto sessions =
      std::stoul(arg_value(argc, argv, "--sessions", "8"));
  const auto events_per_session = std::stoul(
      arg_value(argc, argv, "--events-per-session", full ? "100000" : "40000"));
  serve::ServiceConfig config;
  config.num_workers = std::stoul(arg_value(argc, argv, "--workers", "2"));
  config.queue_capacity = std::stoul(arg_value(argc, argv, "--queue", "4096"));
  const auto policy = serve::parse_backpressure_policy(
      arg_value(argc, argv, "--policy", "block"));
  if (!policy) {
    std::cerr << "unknown --policy (block|drop-oldest|reject)\n";
    return 1;
  }
  config.policy = *policy;

  // Tracing runs with the production-shaped bounded sinks (default span
  // log and decision log capacities, drop-accounted): the measured cost is
  // the sampling guard + record assembly, not an unbounded keep-everything
  // buffer.
  // `sample` is the production configuration: 1-in-100 plus a record for
  // every flagged window/alarm. `sample-periodic` switches the always-on
  // flagged path off to isolate the sampling mechanism's cost — this feed
  // cycles unrelated traces, so ~14% of its windows are genuinely flagged
  // seams and the audit-trail guarantee records all of them (a cost that
  // scales with the anomaly rate, not the event rate).
  const std::string trace_mode = arg_value(argc, argv, "--trace", "off");
  if (trace_mode == "sample" || trace_mode == "sample-periodic" ||
      trace_mode == "always") {
    const std::size_t every = trace_mode == "always" ? 1 : 100;
    config.tracing.enabled = true;
    config.tracing.sample_every = every;
    config.monitor.decisions.enabled = true;
    config.monitor.decisions.sample_every = every;
    config.monitor.decisions.always_on_flagged =
        trace_mode != "sample-periodic";
  } else if (trace_mode != "off") {
    std::cerr
        << "unknown --trace mode (off|sample|sample-periodic|always)\n";
    return 1;
  }

  const std::string admin_mode = arg_value(argc, argv, "--admin", "off");
  if (admin_mode != "on" && admin_mode != "off") {
    std::cerr << "unknown --admin mode (off|on)\n";
    return 1;
  }
  const auto admin_scrape_ms =
      std::stoul(arg_value(argc, argv, "--admin-scrape-ms", "1000"));

  const std::string failpoints =
      arg_value(argc, argv, "--failpoints", "disabled");
  if (failpoints == "armed") {
    // An armed point anywhere flips the global fast-path gate: every site
    // now evaluates its policy per pass. after:N with an unreachable N
    // keeps the run fault-free while exercising that full slow path.
    util::FailpointRegistry::instance().arm(
        "snapshot.write_torn",
        util::FailpointSpec{util::FailpointMode::kAfterN,
                            std::uint64_t{1} << 62});
  } else if (failpoints != "disabled") {
    std::cerr << "unknown --failpoints mode (disabled|armed)\n";
    return 1;
  }

  std::cout << "cmarkovd load generator: " << sessions << " sessions x "
            << events_per_session << " events, " << config.num_workers
            << " workers, queue=" << config.queue_capacity
            << ", policy=" << serve::backpressure_policy_name(config.policy)
            << ", trace=" << trace_mode << ", failpoints=" << failpoints
            << ", admin=" << admin_mode << "\n";

  const workload::ProgramSuite gzip = workload::make_gzip_suite();
  const workload::ProgramSuite sed = workload::make_sed_suite();
  serve::ModelRegistry registry;
  registry.add("gzip", train_detector(gzip, 91));
  registry.add("sed", train_detector(sed, 17));

  std::vector<std::string> ids;
  std::vector<std::vector<trace::CallEvent>> feeds;
  for (std::size_t i = 0; i < sessions; ++i) {
    const bool is_gzip = i % 2 == 0;
    ids.push_back((is_gzip ? "gzip-" : "sed-") + std::to_string(i));
    feeds.push_back(build_feed(is_gzip ? gzip : sed, events_per_session,
                               300 + i));
  }

  serve::SessionManager manager(registry, config);
  for (std::size_t i = 0; i < sessions; ++i) {
    manager.open_session(ids[i], i % 2 == 0 ? "gzip" : "sed");
  }

  // The production introspection stack, measured whole: admin HTTP plane
  // on its own ephemeral listener, 1 Hz collector, one scraping poller.
  std::unique_ptr<serve::net::AdminHandler> admin;
  std::unique_ptr<obs::TimeSeriesCollector> collector;
  std::unique_ptr<serve::net::EpollServer> admin_server;
  std::atomic<bool> stop_poller{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::thread poller;
  if (admin_mode == "on") {
    admin = std::make_unique<serve::net::AdminHandler>(manager);
    obs::CollectorOptions copts;
    copts.pre_sample = [&manager] { (void)manager.metrics_registry(); };
    collector = std::make_unique<obs::TimeSeriesCollector>(
        manager.instruments(), std::move(copts));
    admin->set_collector(collector.get());
    serve::net::NetOptions net;
    net.port = 0;
    net.num_loops = 1;
    net.admin = admin.get();
    net.admin_port = 0;
    admin_server = std::make_unique<serve::net::EpollServer>(manager, net);
    admin_server->start();
    admin->set_loop_status_fn(
        [srv = admin_server.get()] { return srv->loop_status(); });
    collector->start();
    const std::uint16_t admin_port = admin_server->admin_port();
    poller = std::thread([&stop_poller, &scrapes, admin_port,
                          admin_scrape_ms] {
      while (!stop_poller.load(std::memory_order_relaxed)) {
        try {
          (void)serve::net::admin_http_get("127.0.0.1", admin_port, "/varz");
          (void)serve::net::admin_http_get("127.0.0.1", admin_port,
                                           "/metrics");
          (void)serve::net::admin_http_get("127.0.0.1", admin_port,
                                           "/statusz");
          scrapes.fetch_add(1, std::memory_order_relaxed);
        } catch (const std::exception&) {
          // Scrape failures would show up as a suspiciously low count.
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(admin_scrape_ms));
      }
    });
  }

  Stopwatch watch;
  std::vector<std::thread> producers;
  producers.reserve(sessions);
  for (std::size_t i = 0; i < sessions; ++i) {
    producers.emplace_back([&, i] {
      for (const auto& event : feeds[i]) manager.submit(ids[i], event);
    });
  }
  for (auto& producer : producers) producer.join();
  manager.drain();
  const double elapsed = watch.seconds();

  if (admin_mode == "on") {
    stop_poller.store(true, std::memory_order_relaxed);
    poller.join();
    collector->stop();
    admin_server->stop();
  }

  TablePrinter table({"Session", "Model", "Enqueued", "Processed", "Dropped",
                      "Rejected", "Windows", "Alarms"});
  for (const auto& id : ids) {
    const serve::SessionStats stats = manager.session_stats(id);
    table.add_row({stats.id, stats.model, std::to_string(stats.enqueued),
                   std::to_string(stats.processed),
                   std::to_string(stats.dropped),
                   std::to_string(stats.rejected),
                   std::to_string(stats.monitor.windows_scored),
                   std::to_string(stats.monitor.alarms)});
  }
  table.print();

  const serve::ServiceMetrics metrics = manager.metrics();
  const double events_per_second =
      static_cast<double>(metrics.events_processed) / elapsed;
  std::cout << "aggregate: " << metrics.events_processed << " events in "
            << format_double(elapsed, 2) << "s -> "
            << format_double(events_per_second, 0) << " events/sec\n";
  std::cout << "latency: p50=" << format_double(metrics.p50_latency_micros, 0)
            << "us p99=" << format_double(metrics.p99_latency_micros, 0)
            << "us (" << metrics.latency_samples << " samples)\n";
  std::cout << "dropped=" << metrics.events_dropped
            << " rejected=" << metrics.events_rejected
            << " alarms=" << metrics.alarms << "\n";
  if (admin_mode == "on") {
    std::cout << "admin: " << scrapes.load()
              << " scrape round(s) of /varz+/metrics+/statusz, "
              << collector->samples_taken() << " collector sample(s)\n";
  }
  if (trace_mode != "off") {
    std::cout << "tracing: spans=" << manager.tracer().recorded()
              << " (+" << manager.tracer().dropped() << " dropped)"
              << " decisions=" << manager.decision_log().appended()
              << " (+" << manager.decision_log().dropped() << " dropped)\n";
  }
  std::cout << "target " << format_double(kTargetEventsPerSecond, 0)
            << " events/sec: "
            << (events_per_second >= kTargetEventsPerSecond ? "PASS" : "FAIL")
            << "\n";
  return 0;
}
