// Tests for the leveled logging facility.
#include <gtest/gtest.h>

#include <sstream>

#include "src/util/logging.hpp"

namespace cmarkov {
namespace {

/// Captures std::cerr for the duration of a scope.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string text() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, MessagesCarryLevelPrefix) {
  set_log_level(LogLevel::kDebug);
  CerrCapture capture;
  log_message(LogLevel::kWarn, "watch out");
  EXPECT_EQ(capture.text(), "[WARN] watch out\n");
}

TEST_F(LoggingTest, LevelsBelowThresholdAreDropped) {
  set_log_level(LogLevel::kWarn);
  CerrCapture capture;
  log_message(LogLevel::kDebug, "noise");
  log_message(LogLevel::kInfo, "more noise");
  log_message(LogLevel::kError, "signal");
  EXPECT_EQ(capture.text(), "[ERROR] signal\n");
}

TEST_F(LoggingTest, StreamStyleBuildersFlushOnDestruction) {
  set_log_level(LogLevel::kDebug);
  CerrCapture capture;
  log_info() << "value=" << 42 << " ratio=" << 1.5;
  EXPECT_EQ(capture.text(), "[INFO] value=42 ratio=1.5\n");
}

TEST_F(LoggingTest, BuilderRespectsLevel) {
  set_log_level(LogLevel::kError);
  CerrCapture capture;
  log_debug() << "hidden";
  log_warn() << "also hidden";
  log_error() << "visible";
  EXPECT_EQ(capture.text(), "[ERROR] visible\n");
}

TEST_F(LoggingTest, LevelIsQueryable) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace cmarkov
