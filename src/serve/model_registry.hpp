// Thread-safe store of trained detectors, shared immutably across every
// session of the serving layer. Models are reference-counted and versioned:
// replacing a name (hot swap) atomically publishes a new version, moves the
// old detector onto a retired list, and bumps the registry's reload epoch.
//
// Reclamation is two-layered. Sessions pin the exact detector they score
// with via shared_ptr, so an in-flight forward pass can never read freed
// memory. On top of that, the retired list + epoch counter implement
// epoch-based reclamation for the registry's own reference: workers stamp
// the epoch they entered before scoring a batch (SessionManager), and
// reclaim_retired(min_active_epoch) drops retired entries no active epoch
// can still observe — so a hot swap's memory is returned promptly instead
// of lingering until the last long-lived session closes.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/core/detector.hpp"
#include "src/core/scoring_kernel.hpp"

namespace cmarkov::serve {

/// A model lookup with its registry identity: the instance `version` is
/// monotonic per name within this process (bumped by every swap), while
/// `fingerprint` hashes the detector's serialized content and is stable
/// across processes — session snapshots store it so a restore after a
/// daemon restart can tell "same model bytes" from "retrained model".
/// `kernel` is the compiled ScoringKernel image for this exact detector
/// version, compiled once at add/swap time and shared read-only by every
/// session bound to the version; it retires and reclaims in lockstep with
/// the detector under the same epoch scheme.
struct VersionedModel {
  std::shared_ptr<const core::Detector> detector;
  std::shared_ptr<const core::ScoringKernel> kernel;
  std::uint64_t version = 0;
  std::uint64_t fingerprint = 0;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers (or hot-swaps) a trained detector under `name`. Throws
  /// std::invalid_argument for untrained detectors: the serving layer only
  /// scores, it never trains.
  void add(const std::string& name, core::Detector detector);
  void add_shared(const std::string& name,
                  std::shared_ptr<const core::Detector> detector);

  /// Loads a detector file (core::load_detector_file format). Malformed
  /// files throw std::runtime_error naming the offending content; untrained
  /// models throw std::invalid_argument.
  void load_file(const std::string& name, const std::string& path);

  /// Loads every "*.model" file in `dir` under its stem name; returns the
  /// number of models loaded.
  std::size_t load_directory(const std::string& dir);

  /// nullptr when the name is unknown.
  std::shared_ptr<const core::Detector> get(const std::string& name) const;

  /// Throws std::invalid_argument when the name is unknown.
  std::shared_ptr<const core::Detector> require(const std::string& name) const;

  /// Lookup with version + fingerprint; detector is null when unknown.
  VersionedModel get_versioned(const std::string& name) const;

  /// Like get_versioned but throws std::invalid_argument when unknown.
  VersionedModel require_versioned(const std::string& name) const;

  std::vector<std::string> names() const;
  std::size_t size() const;

  /// Monotonic epoch, bumped by every add/swap. Readers that must not see
  /// a freed model stamp this value before touching a detector and clear
  /// it after; see reclaim_retired.
  std::uint64_t reload_epoch() const {
    return reload_epoch_.load(std::memory_order_acquire);
  }

  /// Frees retired (hot-swapped-out) registry references whose retirement
  /// epoch precedes `min_active_epoch` — i.e. every reader active at or
  /// after that epoch can only have resolved the replacement. Passing the
  /// sentinel UINT64_MAX (no active readers) frees everything retired.
  /// Returns the number of entries reclaimed.
  std::size_t reclaim_retired(std::uint64_t min_active_epoch);

  /// Retired entries awaiting reclamation (tests and METRICS).
  std::size_t retired_count() const;

  /// Total arena bytes of the live (non-retired) compiled kernel images —
  /// the per-model-version memory bill the cmarkov_serve_kernel_image_bytes
  /// gauge reports.
  std::size_t kernel_image_bytes() const;

 private:
  struct Entry {
    std::shared_ptr<const core::Detector> detector;
    std::shared_ptr<const core::ScoringKernel> kernel;
    std::uint64_t version = 0;
    std::uint64_t fingerprint = 0;
  };
  struct Retired {
    std::shared_ptr<const core::Detector> detector;
    std::shared_ptr<const core::ScoringKernel> kernel;
    std::uint64_t epoch = 0;  ///< reload epoch at retirement time
  };

  mutable std::shared_mutex mu_;
  std::map<std::string, Entry> models_;
  std::vector<Retired> retired_;
  std::atomic<std::uint64_t> reload_epoch_{1};
};

}  // namespace cmarkov::serve
