#include "src/util/table_printer.hpp"

#include <algorithm>
#include <iostream>
#include <stdexcept>

namespace cmarkov {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TablePrinter: need at least one column");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("TablePrinter: row wider than header");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t c = 0; c < cells.size(); ++c) {
      line += cells[c];
      line.append(widths[c] - cells[c].size(), ' ');
      if (c + 1 < cells.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = render_row(headers_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out += std::string(rule_len, '-') + "\n";
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

void TablePrinter::print() const { std::cout << to_string(); }

}  // namespace cmarkov
