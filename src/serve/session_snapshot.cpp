#include "src/serve/session_snapshot.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "src/util/crc32.hpp"
#include "src/util/failpoint.hpp"
#include "src/util/logging.hpp"

namespace cmarkov::serve {

namespace {

constexpr const char* kMagic = "cmarkov-session";
constexpr int kVersion = 1;
/// Sanity bound for the length-prefixed string fields (id/model). Far
/// above anything the wire protocol admits; guards the decoder against
/// allocating ahead of a lying length in a corrupted file.
constexpr std::uint64_t kMaxStringField = 1 << 20;
/// On-disk integrity footer: "crc32 " + 8 hex digits + "\n".
constexpr std::size_t kFooterLength = 15;

std::uint64_t read_u64(std::istream& in, const char* key) {
  std::uint64_t value = 0;
  if (!(in >> value)) {
    throw std::runtime_error(std::string("session_snapshot: malformed '") +
                             key + "' value");
  }
  return value;
}

void expect_key(std::istream& in, const char* key) {
  std::string seen;
  if (!(in >> seen) || seen != key) {
    throw std::runtime_error(
        std::string("session_snapshot: expected key '") + key + "'");
  }
}

/// Reads a length-prefixed string field: "<len> <len bytes>". The CMKB
/// HELLO admits arbitrary bytes in session/model names (spaces, newlines),
/// so these fields cannot be whitespace-tokenized.
std::string read_sized_string(std::istream& in, const char* key) {
  const std::uint64_t length = read_u64(in, key);
  if (length > kMaxStringField) {
    throw std::runtime_error(std::string("session_snapshot: '") + key +
                             "' length " + std::to_string(length) +
                             " exceeds the " +
                             std::to_string(kMaxStringField) + " byte cap");
  }
  if (in.get() != ' ') {
    throw std::runtime_error(std::string("session_snapshot: malformed '") +
                             key + "' value");
  }
  std::string value(static_cast<std::size_t>(length), '\0');
  if (length > 0 &&
      !in.read(value.data(), static_cast<std::streamsize>(length))) {
    throw std::runtime_error(std::string("session_snapshot: truncated '") +
                             key + "' value");
  }
  return value;
}

/// Session ids come from the wire; keep the on-disk name filesystem-safe.
std::string sanitize_for_filename(const std::string& id) {
  std::string out;
  out.reserve(id.size());
  for (const char c : id) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    if (safe) {
      out.push_back(c);
    } else {
      static const char* hex = "0123456789abcdef";
      out.push_back('%');
      out.push_back(hex[static_cast<unsigned char>(c) >> 4]);
      out.push_back(hex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

std::string crc_footer(const std::string& body) {
  char footer[kFooterLength + 1];
  std::snprintf(footer, sizeof(footer), "crc32 %08x", util::crc32(body));
  return std::string(footer) + "\n";
}

/// Verifies the trailing "crc32 <8hex>\n" footer against the body it seals
/// and returns the body. Throws on a missing footer, a malformed footer,
/// or a checksum mismatch — the three faces of a torn or bit-rotted file.
std::string verify_and_strip_footer(const std::string& contents) {
  if (contents.size() < kFooterLength || contents.back() != '\n' ||
      contents.compare(contents.size() - kFooterLength, 6, "crc32 ") != 0) {
    throw std::runtime_error("session_snapshot: missing crc32 footer");
  }
  const std::string hex = contents.substr(contents.size() - 9, 8);
  if (hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
    throw std::runtime_error("session_snapshot: malformed crc32 footer");
  }
  const auto stored =
      static_cast<std::uint32_t>(std::strtoul(hex.c_str(), nullptr, 16));
  std::string body = contents.substr(0, contents.size() - kFooterLength);
  const std::uint32_t actual = util::crc32(body);
  if (actual != stored) {
    char message[96];
    std::snprintf(message, sizeof(message),
                  "session_snapshot: crc32 mismatch (stored %08x, actual %08x)",
                  stored, actual);
    throw std::runtime_error(message);
  }
  return body;
}

/// Writes the whole buffer, riding out EINTR. False on any write error.
bool write_fully(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Best-effort fsync of the directory holding a just-renamed file, so the
/// rename itself survives power loss. Failure is logged, not fatal: data
/// durability already came from the file fsync.
void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  if (::fsync(fd) != 0) {
    log_error() << "snapshot store: fsync of directory '" << dir
                << "' failed: " << std::strerror(errno);
  }
  ::close(fd);
}

}  // namespace

std::string encode_session_snapshot(const SessionSnapshot& snapshot) {
  std::ostringstream out;
  out << kMagic << " " << kVersion << "\n";
  // id/model are length-prefixed: the wire allows arbitrary bytes in them.
  out << "id " << snapshot.id.size() << " " << snapshot.id << "\n";
  out << "model " << snapshot.model.size() << " " << snapshot.model << "\n";
  out << "model_version " << snapshot.model_version << "\n";
  out << "model_fingerprint " << snapshot.model_fingerprint << "\n";
  out << "enqueued " << snapshot.enqueued << "\n";
  out << "processed " << snapshot.processed << "\n";
  out << "dropped " << snapshot.dropped << "\n";
  out << "rejected " << snapshot.rejected << "\n";
  out << "evicted_dropped " << snapshot.evicted_dropped << "\n";
  out << "windows_to_alarm " << snapshot.windows_to_alarm << "\n";
  out << "cooldown_events " << snapshot.cooldown_events << "\n";
  out << "consecutive_flagged " << snapshot.monitor.consecutive_flagged
      << "\n";
  out << "cooldown_remaining " << snapshot.monitor.cooldown_remaining << "\n";
  out << "events_seen " << snapshot.monitor.stats.events_seen << "\n";
  out << "events_observed " << snapshot.monitor.stats.events_observed << "\n";
  out << "windows_scored " << snapshot.monitor.stats.windows_scored << "\n";
  out << "windows_flagged " << snapshot.monitor.stats.windows_flagged << "\n";
  out << "alarms " << snapshot.monitor.stats.alarms << "\n";
  out << "window " << snapshot.monitor.window.size();
  for (const std::size_t id : snapshot.monitor.window) out << " " << id;
  out << "\n";
  return out.str();
}

SessionSnapshot decode_session_snapshot(const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  if (!(in >> magic) || magic != kMagic) {
    throw std::runtime_error(
        "session_snapshot: not a cmarkov session snapshot");
  }
  int version = 0;
  if (!(in >> version)) {
    throw std::runtime_error("session_snapshot: malformed version");
  }
  if (version != kVersion) {
    throw std::runtime_error("session_snapshot: unsupported version " +
                             std::to_string(version));
  }
  SessionSnapshot snapshot;
  expect_key(in, "id");
  snapshot.id = read_sized_string(in, "id");
  expect_key(in, "model");
  snapshot.model = read_sized_string(in, "model");
  expect_key(in, "model_version");
  snapshot.model_version = read_u64(in, "model_version");
  expect_key(in, "model_fingerprint");
  snapshot.model_fingerprint = read_u64(in, "model_fingerprint");
  expect_key(in, "enqueued");
  snapshot.enqueued = read_u64(in, "enqueued");
  expect_key(in, "processed");
  snapshot.processed = read_u64(in, "processed");
  expect_key(in, "dropped");
  snapshot.dropped = read_u64(in, "dropped");
  expect_key(in, "rejected");
  snapshot.rejected = read_u64(in, "rejected");
  expect_key(in, "evicted_dropped");
  snapshot.evicted_dropped = read_u64(in, "evicted_dropped");
  expect_key(in, "windows_to_alarm");
  snapshot.windows_to_alarm = read_u64(in, "windows_to_alarm");
  expect_key(in, "cooldown_events");
  snapshot.cooldown_events = read_u64(in, "cooldown_events");
  expect_key(in, "consecutive_flagged");
  snapshot.monitor.consecutive_flagged =
      static_cast<std::size_t>(read_u64(in, "consecutive_flagged"));
  expect_key(in, "cooldown_remaining");
  snapshot.monitor.cooldown_remaining =
      static_cast<std::size_t>(read_u64(in, "cooldown_remaining"));
  expect_key(in, "events_seen");
  snapshot.monitor.stats.events_seen =
      static_cast<std::size_t>(read_u64(in, "events_seen"));
  expect_key(in, "events_observed");
  snapshot.monitor.stats.events_observed =
      static_cast<std::size_t>(read_u64(in, "events_observed"));
  expect_key(in, "windows_scored");
  snapshot.monitor.stats.windows_scored =
      static_cast<std::size_t>(read_u64(in, "windows_scored"));
  expect_key(in, "windows_flagged");
  snapshot.monitor.stats.windows_flagged =
      static_cast<std::size_t>(read_u64(in, "windows_flagged"));
  expect_key(in, "alarms");
  snapshot.monitor.stats.alarms =
      static_cast<std::size_t>(read_u64(in, "alarms"));
  expect_key(in, "window");
  const std::uint64_t count = read_u64(in, "window");
  snapshot.monitor.window.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::size_t id = 0;
    if (!(in >> id)) {
      throw std::runtime_error(
          "session_snapshot: truncated window at entry " + std::to_string(i));
    }
    snapshot.monitor.window.push_back(id);
  }
  return snapshot;
}

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("SnapshotStore: cannot create directory '" +
                             dir_ + "': " + ec.message());
  }
}

void SnapshotStore::bind_instruments(obs::MetricsRegistry& metrics) {
  writes_total_ = &metrics.counter("cmarkov_snapshot_writes_total");
  write_failures_total_ =
      &metrics.counter("cmarkov_snapshot_write_failures_total");
  write_retries_total_ =
      &metrics.counter("cmarkov_snapshot_write_retries_total");
  quarantined_total_ = &metrics.counter("cmarkov_snapshot_quarantined_total");
}

std::string SnapshotStore::file_path(const std::string& id) const {
  return dir_ + "/" + sanitize_for_filename(id) + ".session";
}

std::uint64_t SnapshotStore::now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t SnapshotStore::backoff_micros(std::uint64_t attempts) const {
  std::uint64_t backoff = retry_base_micros_;
  for (std::uint64_t i = 1; i < attempts && backoff < retry_cap_micros_; ++i) {
    backoff *= 2;
  }
  return std::min(backoff, retry_cap_micros_);
}

void SnapshotStore::set_retry_backoff(std::uint64_t base_micros,
                                      std::uint64_t cap_micros) {
  const std::lock_guard io(io_mu_);
  retry_base_micros_ = base_micros;
  retry_cap_micros_ = std::max(base_micros, cap_micros);
}

bool SnapshotStore::write_snapshot_file(const std::string& id,
                                        const std::string& encoded) {
  const std::string path = file_path(id);
  const std::string tmp = path + ".tmp";
  const std::string payload = encoded + crc_footer(encoded);

  if (CMARKOV_FAILPOINT("snapshot.write_torn")) {
    // Model a crashed or non-atomic writer: half the payload lands at the
    // FINAL path and the write "succeeds" — the tear is only discoverable
    // at boot, which is exactly what the quarantine path must catch.
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(payload.data(),
               static_cast<std::streamsize>(payload.size() / 2));
    return true;
  }

  int fd = -1;
  if (CMARKOV_FAILPOINT("snapshot.open_fail")) {
    errno = EACCES;
  } else {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  }
  if (fd < 0) {
    log_error() << "snapshot store: cannot open '" << tmp
                << "': " << std::strerror(errno);
    return false;
  }

  bool ok = !CMARKOV_FAILPOINT("snapshot.write_fail") && write_fully(fd, payload);
  if (ok && (CMARKOV_FAILPOINT("snapshot.fsync_fail") || ::fsync(fd) != 0)) {
    ok = false;
  }
  ::close(fd);
  if (ok && ::rename(tmp.c_str(), path.c_str()) != 0) ok = false;
  if (!ok) {
    log_error() << "snapshot store: cannot write '" << path
                << "': " << std::strerror(errno)
                << "; keeping snapshot in memory, will retry";
    ::unlink(tmp.c_str());
    return false;
  }
  fsync_directory(dir_);
  return true;
}

void SnapshotStore::put(SessionSnapshot snapshot) {
  const std::string id = snapshot.id;
  std::string encoded;
  if (!dir_.empty()) encoded = encode_session_snapshot(snapshot);
  {
    const std::lock_guard lock(mu_);
    snapshots_[id] = std::move(snapshot);
  }
  if (dir_.empty()) return;
  // Disk I/O happens under io_mu_, never mu_: stats readers (peek/contains)
  // must not queue behind file writes. An I/O failure degrades this
  // snapshot to memory-only with a logged error — put() runs on the
  // eviction path, where throwing would surface as a protocol error to
  // whichever client's submit() triggered the eviction. The id goes on the
  // dirty list instead and every subsequent put (i.e. the next eviction
  // pass) re-attempts whatever is due.
  const std::lock_guard io(io_mu_);
  flush_dirty_locked(now_micros());
  if (writes_total_ != nullptr) writes_total_->add(1);
  if (write_snapshot_file(id, encoded)) {
    dirty_.erase(id);
    return;
  }
  if (write_failures_total_ != nullptr) write_failures_total_->add(1);
  RetryState& state = dirty_[id];
  state.attempts += 1;
  state.next_retry_micros = now_micros() + backoff_micros(state.attempts);
}

std::size_t SnapshotStore::flush_dirty_locked(std::uint64_t now) {
  std::size_t flushed = 0;
  for (auto it = dirty_.begin(); it != dirty_.end();) {
    if (it->second.next_retry_micros > now) {
      ++it;
      continue;
    }
    std::string encoded;
    {
      const std::lock_guard lock(mu_);
      const auto snap = snapshots_.find(it->first);
      if (snap == snapshots_.end()) {
        // Taken (restored) since the failed write — nothing left to persist.
        it = dirty_.erase(it);
        continue;
      }
      encoded = encode_session_snapshot(snap->second);
    }
    if (write_retries_total_ != nullptr) write_retries_total_->add(1);
    if (write_snapshot_file(it->first, encoded)) {
      it = dirty_.erase(it);
      ++flushed;
    } else {
      if (write_failures_total_ != nullptr) write_failures_total_->add(1);
      it->second.attempts += 1;
      it->second.next_retry_micros = now + backoff_micros(it->second.attempts);
      ++it;
    }
  }
  return flushed;
}

std::size_t SnapshotStore::retry_pending_writes() {
  if (dir_.empty()) return 0;
  const std::lock_guard io(io_mu_);
  return flush_dirty_locked(now_micros());
}

std::size_t SnapshotStore::dirty_count() const {
  const std::lock_guard io(io_mu_);
  return dirty_.size();
}

std::size_t SnapshotStore::quarantined_count() const {
  const std::lock_guard io(io_mu_);
  return quarantined_;
}

std::optional<SessionSnapshot> SnapshotStore::take(const std::string& id) {
  // io_mu_ before mu_ (the store's one nesting site): the file and the
  // dirty entry must go away atomically with the memory entry, or a
  // concurrent retry pass could resurrect the file of a consumed session.
  const std::lock_guard io(io_mu_);
  const std::lock_guard lock(mu_);
  const auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return std::nullopt;
  SessionSnapshot snapshot = std::move(it->second);
  snapshots_.erase(it);
  dirty_.erase(id);
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::remove(file_path(id), ec);  // best effort
    std::filesystem::remove(file_path(id) + ".tmp", ec);
  }
  return snapshot;
}

std::optional<SessionSnapshot> SnapshotStore::peek(
    const std::string& id) const {
  const std::lock_guard lock(mu_);
  const auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return std::nullopt;
  return it->second;
}

bool SnapshotStore::contains(const std::string& id) const {
  const std::lock_guard lock(mu_);
  return snapshots_.find(id) != snapshots_.end();
}

std::size_t SnapshotStore::size() const {
  const std::lock_guard lock(mu_);
  return snapshots_.size();
}

void SnapshotStore::quarantine_file(const std::string& path,
                                    const std::string& reason) {
  namespace fs = std::filesystem;
  const fs::path source(path);
  const fs::path qdir = fs::path(dir_) / "quarantine";
  std::error_code ec;
  fs::create_directories(qdir, ec);
  const fs::path target = qdir / source.filename();
  fs::rename(source, target, ec);
  if (ec) {
    log_error() << "snapshot store: cannot quarantine " << path << " ("
                << reason << "): " << ec.message();
    return;
  }
  log_error() << "snapshot store: quarantined " << path << " -> " << target
              << ": " << reason;
  ++quarantined_;
  if (quarantined_total_ != nullptr) quarantined_total_->add(1);
}

std::size_t SnapshotStore::load_directory() {
  if (dir_.empty()) return 0;
  const std::lock_guard io(io_mu_);
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  std::vector<fs::path> orphans;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() == ".tmp") {
      orphans.push_back(entry.path());
    } else if (entry.path().extension() == ".session") {
      files.push_back(entry.path());
    }
  }
  for (const fs::path& orphan : orphans) {
    // A crash mid-write leaves the tmp; the final file (old or absent) is
    // the authoritative state, so the tmp is just litter.
    std::error_code ec;
    fs::remove(orphan, ec);
    log_info() << "snapshot store: removed orphaned tmp " << orphan;
  }
  std::size_t loaded = 0;
  for (const fs::path& path : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    try {
      const std::string body = verify_and_strip_footer(buffer.str());
      SessionSnapshot snapshot = decode_session_snapshot(body);
      const std::lock_guard lock(mu_);
      snapshots_[snapshot.id] = std::move(snapshot);
      ++loaded;
    } catch (const std::exception& e) {
      // One corrupt (or adversarial) file must not abort daemon startup —
      // and must not vanish silently either: move it aside where an
      // operator can inspect it, count it, and keep every healthy sibling.
      quarantine_file(path.string(), e.what());
    }
  }
  if (loaded > 0) {
    log_info() << "snapshot store: restored " << loaded
               << " session snapshot(s) from " << dir_;
  }
  return loaded;
}

}  // namespace cmarkov::serve
