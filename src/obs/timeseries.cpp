#include "src/obs/timeseries.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "src/obs/export.hpp"
#include "src/util/stopwatch.hpp"

namespace cmarkov::obs {

TimeSeriesRing::TimeSeriesRing(std::size_t capacity) : buf_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TimeSeriesRing: capacity must be > 0");
  }
}

void TimeSeriesRing::push(double t_seconds, double value) {
  if (count_ < buf_.size()) {
    buf_[(head_ + count_) % buf_.size()] = TimePoint{t_seconds, value};
    ++count_;
    return;
  }
  buf_[head_] = TimePoint{t_seconds, value};
  head_ = (head_ + 1) % buf_.size();
}

TimePoint TimeSeriesRing::oldest() const { return buf_[head_]; }

TimePoint TimeSeriesRing::newest() const {
  return buf_[(head_ + count_ - 1) % buf_.size()];
}

double TimeSeriesRing::latest() const { return empty() ? 0.0 : newest().value; }

double TimeSeriesRing::delta() const {
  if (count_ < 2) return 0.0;
  return newest().value - oldest().value;
}

double TimeSeriesRing::rate_per_second() const {
  if (count_ < 2) return 0.0;
  const double span = newest().t_seconds - oldest().t_seconds;
  if (span <= 0.0) return 0.0;
  return delta() / span;
}

std::vector<TimePoint> TimeSeriesRing::samples() const {
  std::vector<TimePoint> out;
  out.reserve(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    out.push_back(buf_[(head_ + i) % buf_.size()]);
  }
  return out;
}

double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0 || bounds.empty()) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < bounds.size() && i < counts.size(); ++i) {
    seen += counts[i];
    if (seen >= target) return bounds[i];
  }
  return bounds.back();  // overflow mass saturates at the last finite bound
}

TimeSeriesCollector::TimeSeriesCollector(const MetricsRegistry& registry,
                                         CollectorOptions options)
    : registry_(registry), options_(std::move(options)) {
  if (options_.ring_capacity == 0) {
    throw std::invalid_argument(
        "TimeSeriesCollector: ring_capacity must be > 0");
  }
  if (!(options_.period_seconds > 0.0)) {
    throw std::invalid_argument(
        "TimeSeriesCollector: period_seconds must be > 0");
  }
}

TimeSeriesCollector::~TimeSeriesCollector() { stop(); }

void TimeSeriesCollector::start() {
  const std::lock_guard lock(thread_mu_);
  if (started_) return;
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { thread_main(); });
}

void TimeSeriesCollector::stop() {
  {
    const std::lock_guard lock(thread_mu_);
    if (!started_) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  const std::lock_guard lock(thread_mu_);
  started_ = false;
}

void TimeSeriesCollector::thread_main() {
  Stopwatch watch;
  const auto period = std::chrono::duration<double>(options_.period_seconds);
  for (;;) {
    {
      std::unique_lock lock(thread_mu_);
      if (stop_cv_.wait_for(lock, period, [&] { return stopping_; })) return;
    }
    if (options_.pre_sample) options_.pre_sample();
    sample_now(watch.seconds());
  }
}

void TimeSeriesCollector::sample_now(double t_seconds) {
  // Snapshot outside the collector mutex: the registry does its own
  // locking, and varz_json() readers only ever wait on ring bookkeeping.
  const MetricsRegistry::Snapshot snap = registry_.snapshot();
  const std::lock_guard lock(mu_);
  for (const auto& [name, value] : snap.counters) {
    if (options_.filter && !options_.filter(name)) continue;
    auto it = counters_.find(name);
    if (it == counters_.end()) {
      it = counters_.emplace(name, TimeSeriesRing(options_.ring_capacity))
               .first;
    }
    it->second.push(t_seconds, static_cast<double>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    if (options_.filter && !options_.filter(name)) continue;
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      it = gauges_.emplace(name, TimeSeriesRing(options_.ring_capacity)).first;
    }
    it->second.push(t_seconds, value);
  }
  for (const auto& [name, hist] : snap.histograms) {
    if (options_.filter && !options_.filter(name)) continue;
    HistSeries& series = histograms_[name];
    if (series.bounds.empty()) series.bounds = hist.bounds;
    series.ring.push_back(HistSample{t_seconds, hist.count, hist.buckets});
    while (series.ring.size() > options_.ring_capacity) {
      series.ring.pop_front();
    }
  }
  ++samples_;
  last_t_seconds_ = t_seconds;
}

std::uint64_t TimeSeriesCollector::samples_taken() const {
  const std::lock_guard lock(mu_);
  return samples_;
}

HistogramWindow TimeSeriesCollector::window_locked(
    const HistSeries& series) const {
  HistogramWindow window;
  if (series.ring.empty()) return window;
  const HistSample& newest = series.ring.back();
  window.count = newest.count;
  if (series.ring.size() < 2) {
    // One sample: no window yet — report the lifetime distribution so the
    // quantiles are never silently zero while traffic flows.
    window.p50 = bucket_quantile(series.bounds, newest.buckets, 0.50);
    window.p90 = bucket_quantile(series.bounds, newest.buckets, 0.90);
    window.p99 = bucket_quantile(series.bounds, newest.buckets, 0.99);
    return window;
  }
  const HistSample& oldest = series.ring.front();
  window.count_delta =
      newest.count >= oldest.count ? newest.count - oldest.count : 0;
  const double span = newest.t_seconds - oldest.t_seconds;
  if (span > 0.0) {
    window.rate_per_second =
        static_cast<double>(window.count_delta) / span;
  }
  std::vector<std::uint64_t> deltas(newest.buckets.size(), 0);
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    const std::uint64_t old_count =
        i < oldest.buckets.size() ? oldest.buckets[i] : 0;
    deltas[i] = newest.buckets[i] >= old_count
                    ? newest.buckets[i] - old_count
                    : 0;
  }
  window.p50 = bucket_quantile(series.bounds, deltas, 0.50);
  window.p90 = bucket_quantile(series.bounds, deltas, 0.90);
  window.p99 = bucket_quantile(series.bounds, deltas, 0.99);
  if (window.count_delta == 0) {
    // Quiet window: fall back to the lifetime distribution (matches the
    // single-sample case above).
    window.p50 = bucket_quantile(series.bounds, newest.buckets, 0.50);
    window.p90 = bucket_quantile(series.bounds, newest.buckets, 0.90);
    window.p99 = bucket_quantile(series.bounds, newest.buckets, 0.99);
  }
  return window;
}

double TimeSeriesCollector::counter_rate(std::string_view name) const {
  const std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.rate_per_second();
}

double TimeSeriesCollector::counter_latest(std::string_view name) const {
  const std::lock_guard lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second.latest();
}

double TimeSeriesCollector::gauge_latest(std::string_view name) const {
  const std::lock_guard lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.latest();
}

HistogramWindow TimeSeriesCollector::histogram_window(
    std::string_view name) const {
  const std::lock_guard lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramWindow{} : window_locked(it->second);
}

std::string TimeSeriesCollector::varz_json() const {
  const std::lock_guard lock(mu_);
  std::string out = "{\"schema\":\"cmarkov.varz.v1\"";
  out += ",\"now_seconds\":" + format_metric_value(last_t_seconds_);
  out += ",\"period_seconds\":" + format_metric_value(options_.period_seconds);
  out += ",\"ring_capacity\":" + std::to_string(options_.ring_capacity);
  out += ",\"samples\":" + std::to_string(samples_);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, ring] : counters_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":{\"value\":" + format_metric_value(ring.latest()) +
           ",\"delta\":" + format_metric_value(ring.delta()) +
           ",\"rate_per_second\":" +
           format_metric_value(ring.rate_per_second()) + "}";
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, ring] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += "\"" + name + "\":{\"value\":" + format_metric_value(ring.latest()) +
           ",\"delta\":" + format_metric_value(ring.delta()) + "}";
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, series] : histograms_) {
    if (!first) out += ',';
    first = false;
    const HistogramWindow window = window_locked(series);
    out += "\"" + name + "\":{\"count\":" + std::to_string(window.count) +
           ",\"count_delta\":" + std::to_string(window.count_delta) +
           ",\"rate_per_second\":" +
           format_metric_value(window.rate_per_second) +
           ",\"p50\":" + format_metric_value(window.p50) +
           ",\"p90\":" + format_metric_value(window.p90) +
           ",\"p99\":" + format_metric_value(window.p99) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace cmarkov::obs
